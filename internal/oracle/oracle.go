// Package oracle is the differential-verification subsystem: a flat
// reference memory model cross-checked against the modeled hierarchy at
// every commit point, plus hooks into the hierarchy-wide invariant
// checker.
//
// The oracle attaches to a hier.Hierarchy as an Observer. A sparse
// shadow memory receives every committed store/atomic in simulator
// commit order (the hierarchy fires hooks in the same kernel event as
// the functional change, and the kernel runs one process at a time, so
// hook order IS architectural order). Every committed load is compared
// against the shadow; divergence means the hierarchy returned a value no
// sequentially-consistent-per-location execution could produce — a
// coherence, replacement, or callback bug.
//
// Phantom ranges have no memory backing, so the harness gives them
// oracle-defined semantics (tracegen.go): ShadowPhantom regions are
// backed by the shadow itself (onMiss reads it, onWriteback verifies
// and updates it), and Derived regions are read-only transforms of a
// real source region. This makes every load of a phantom address
// checkable too.
package oracle

import (
	"fmt"

	"tako/internal/hier"
	"tako/internal/mem"
)

// RegionKind tells the oracle how a tracked region behaves.
type RegionKind int

// Region kinds.
const (
	// Plain is ordinary memory-backed data: loads checked, stores
	// shadowed, final state swept against the hierarchy.
	Plain RegionKind = iota
	// ShadowPhantom is a phantom range whose truth IS the shadow: the
	// harness Morph materializes lines from it and verifies evictions
	// against it.
	ShadowPhantom
	// Derived is a read-only phantom range computed from a real source
	// region; the shadow holds the precomputed transform.
	Derived
	// Journal is callback-written data (engine stores around the L2):
	// transient loads are unchecked — a load can race the callback's
	// store commit against its shadow mirror — but the final sweep
	// verifies no journaled write was dropped (per-line writebacks are
	// serialized by the line lock, so the final state is well-defined).
	Journal
	// Untracked data is ignored.
	Untracked
)

func (k RegionKind) String() string {
	switch k {
	case Plain:
		return "plain"
	case ShadowPhantom:
		return "shadow-phantom"
	case Derived:
		return "derived"
	case Journal:
		return "journal"
	default:
		return "untracked"
	}
}

// Mismatch records one divergence between the hierarchy and the
// reference model.
type Mismatch struct {
	Op        string
	Tile      int
	Addr      mem.Addr
	Got, Want uint64
}

func (m Mismatch) String() string {
	return fmt.Sprintf("%s tile %d %v: got %#x want %#x", m.Op, m.Tile, m.Addr, m.Got, m.Want)
}

type tracked struct {
	region mem.Region
	kind   RegionKind
}

// Oracle implements hier.Observer over a flat reference memory.
type Oracle struct {
	h       *hier.Hierarchy
	shadow  *mem.Memory
	regions []tracked

	// CheckEvery > 0 runs the hierarchy-wide invariant checker every
	// that many hierarchy events, recording violations.
	CheckEvery int

	events uint64

	// Operation counts (also the determinism fingerprint's input).
	Loads, Stores, RMOs, EngineOps uint64

	// nMismatch counts all divergences; Mismatches keeps the first few.
	nMismatch   int
	nViolation  int
	Mismatches  []Mismatch
	Violations  []string
	maxRecorded int
}

// New builds an oracle over h's address space and attaches it as h's
// observer.
func New(h *hier.Hierarchy) *Oracle {
	o := &Oracle{h: h, shadow: mem.NewMemory(), maxRecorded: 16}
	h.AttachObserver(o)
	return o
}

// Shadow exposes the reference memory so harnesses can seed initial
// data and callbacks can materialize phantom lines.
func (o *Oracle) Shadow() *mem.Memory { return o.shadow }

// Track registers a region with the oracle.
func (o *Oracle) Track(r mem.Region, kind RegionKind) {
	o.regions = append(o.regions, tracked{r, kind})
}

// KindOf returns a's region kind (Untracked when no region matches).
func (o *Oracle) KindOf(a mem.Addr) RegionKind {
	for _, t := range o.regions {
		if t.region.Contains(a) {
			return t.kind
		}
	}
	return Untracked
}

func (o *Oracle) checked(a mem.Addr) bool {
	switch o.KindOf(a) {
	case Plain, ShadowPhantom, Derived:
		return true
	}
	return false
}

func (o *Oracle) mismatch(op string, tile int, a mem.Addr, got, want uint64) {
	o.nMismatch++
	if len(o.Mismatches) < o.maxRecorded {
		o.Mismatches = append(o.Mismatches, Mismatch{op, tile, a, got, want})
	}
}

func (o *Oracle) violation(site string, err error) {
	o.nViolation++
	if len(o.Violations) < o.maxRecorded {
		o.Violations = append(o.Violations, fmt.Sprintf("after %s: %v", site, err))
	}
}

// MismatchCount returns the total number of divergences (recorded or
// not).
func (o *Oracle) MismatchCount() int { return o.nMismatch }

// ViolationCount returns the total number of invariant violations.
func (o *Oracle) ViolationCount() int { return o.nViolation }

// Err summarizes any recorded problem, nil when the run was clean.
func (o *Oracle) Err() error {
	if o.nMismatch == 0 && o.nViolation == 0 {
		return nil
	}
	return fmt.Errorf("oracle: %d mismatches %v, %d invariant violations %v",
		o.nMismatch, o.Mismatches, o.nViolation, o.Violations)
}

// Fingerprint folds the oracle's observation counts into a string;
// equal-seed runs must produce byte-identical fingerprints.
func (o *Oracle) Fingerprint() string {
	return fmt.Sprintf("loads=%d stores=%d rmos=%d engine=%d events=%d",
		o.Loads, o.Stores, o.RMOs, o.EngineOps, o.events)
}

// ---- hier.Observer ----

// LoadCommitted checks a committed load word against the shadow.
func (o *Oracle) LoadCommitted(tile int, a mem.Addr, v uint64) {
	o.Loads++
	if !o.checked(a) {
		return
	}
	aw := a &^ 7
	if want := o.shadow.ReadU64(aw); v != want {
		o.mismatch("load", tile, aw, v, want)
	}
}

// LineLoaded checks a committed full-line load against the shadow.
func (o *Oracle) LineLoaded(tile int, a mem.Addr, line *mem.Line) {
	o.Loads++
	if !o.checked(a) {
		return
	}
	la := a.Line()
	var want mem.Line
	o.shadow.PeekLine(la, &want)
	for w := 0; w < mem.WordsPerLine; w++ {
		if line.Word(w) != want.Word(w) {
			o.mismatch("loadline", tile, la+mem.Addr(w*8), line.Word(w), want.Word(w))
			return
		}
	}
}

// StoreCommitted applies a committed store word to the shadow.
func (o *Oracle) StoreCommitted(tile int, a mem.Addr, v uint64) {
	o.Stores++
	if o.KindOf(a) == Untracked {
		return
	}
	o.shadow.WriteU64(a&^7, v)
}

// LineStored applies a committed full-line store to the shadow.
func (o *Oracle) LineStored(tile int, a mem.Addr, line *mem.Line, nt bool) {
	o.Stores++
	if o.KindOf(a) == Untracked {
		return
	}
	o.shadow.WriteLine(a.Line(), line)
}

// RMOCommitted checks a read-modify-write's observed old value and
// applies its result, in commit order.
func (o *Oracle) RMOCommitted(tile int, a mem.Addr, op hier.RMOOp, operand, old, result uint64) {
	o.RMOs++
	if o.KindOf(a) == Untracked {
		return
	}
	aw := a &^ 7
	if want := o.shadow.ReadU64(aw); old != want {
		o.mismatch("rmo-old", tile, aw, old, want)
	}
	o.shadow.WriteU64(aw, result)
}

// ExchangeCommitted checks an atomic exchange's returned value and
// applies the swap.
func (o *Oracle) ExchangeCommitted(tile int, a mem.Addr, v, old uint64) {
	o.RMOs++
	if o.KindOf(a) == Untracked {
		return
	}
	aw := a &^ 7
	if want := o.shadow.ReadU64(aw); old != want {
		o.mismatch("xchg-old", tile, aw, old, want)
	}
	o.shadow.WriteU64(aw, v)
}

// EngineAccess counts callback-issued accesses (journal writes etc. are
// oracle-untracked; the harness Morphs verify their own data).
func (o *Oracle) EngineAccess(tile int, a mem.Addr, write bool) { o.EngineOps++ }

// Event drives the periodic hierarchy-wide invariant check.
func (o *Oracle) Event(site string) {
	o.events++
	if o.CheckEvery > 0 && o.events%uint64(o.CheckEvery) == 0 {
		if err := o.h.CheckInvariants(); err != nil {
			o.violation(site, err)
		}
	}
}

// ---- harness-side checks ----

// CheckEvictedLine verifies an evicted line's data against the shadow;
// ShadowPhantom callbacks call it from onEviction/onWriteback, where the
// evicted data must equal the shadow (every store to the line already
// committed there, and the line is locked until the callback finishes).
func (o *Oracle) CheckEvictedLine(op string, tile int, la mem.Addr, line *mem.Line) {
	var want mem.Line
	o.shadow.PeekLine(la, &want)
	for w := 0; w < mem.WordsPerLine; w++ {
		if line.Word(w) != want.Word(w) {
			o.mismatch(op, tile, la+mem.Addr(w*8), line.Word(w), want.Word(w))
			return
		}
	}
}

// VerifyFinal sweeps every tracked Plain and Journal region, comparing
// the architecturally-newest hierarchy value of each word against the
// shadow, and runs a last full invariant check. Call it after the
// simulation quiesces.
func (o *Oracle) VerifyFinal() {
	for _, t := range o.regions {
		if t.kind != Plain && t.kind != Journal {
			continue
		}
		for i := uint64(0); i < t.region.Size/8; i++ {
			a := t.region.Word(i)
			got := o.h.DebugReadWord(a)
			want := o.shadow.ReadU64(a)
			if got != want {
				o.mismatch("final", -1, a, got, want)
			}
		}
	}
	if err := o.h.CheckInvariants(); err != nil {
		o.violation("final", err)
	}
}
