// Package sched is the parallel run scheduler for the simulation
// drivers. Every simulated system is a fully independent deterministic
// kernel, so experiment fan-outs (variants of one study, sweep points of
// one sensitivity axis) can run on separate OS threads; sched provides
// the bounded worker pool they share and guarantees results come back in
// task order, so tables, goldens, and bench reports are byte-identical
// to a sequential run.
//
// Each simulation kernel stays single-threaded internally; sched only
// decides how many kernels run at once.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers is the configured pool width; 0 means GOMAXPROCS.
var workers atomic.Int64

// SetWorkers sets the number of simulations run concurrently (the -j
// flag). n <= 0 resets to the default, GOMAXPROCS.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workers.Store(int64(n))
}

// Workers returns the effective pool width.
func Workers() int {
	if n := int(workers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// inFlight counts tasks currently executing across all Map calls.
var inFlight atomic.Int64

// Active returns how many scheduled tasks are executing right now —
// the live-introspection view of pool utilization.
func Active() int { return int(inFlight.Load()) }

// runTask executes one task under the in-flight counter.
func runTask(i int, fn func(i int) error) error {
	inFlight.Add(1)
	defer inFlight.Add(-1)
	return fn(i)
}

// Map runs fn(0..n-1) across the worker pool and waits for all of them.
// With one worker (or one task) it runs inline on the caller's
// goroutine, which keeps -j 1 byte-for-byte the sequential driver. All
// tasks run to completion even when one fails; the returned error is the
// failure with the lowest index, so the error surfaced does not depend
// on scheduling order.
func Map(n int, fn func(i int) error) error {
	errs := mapAll(n, fn)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// MapResults runs fn(0..n-1) across the worker pool and returns the
// results in task order. Like Map, the first error by index wins.
func MapResults[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Map(n, func(i int) error {
		r, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func mapAll(n int, fn func(i int) error) []error {
	errs := make([]error, n)
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = runTask(i, fn)
		}
		return errs
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = runTask(i, fn)
			}
		}()
	}
	wg.Wait()
	return errs
}
