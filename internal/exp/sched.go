package exp

import (
	"tako/internal/morphs"
	"tako/internal/sched"
)

// runResults fans n independent simulations across the scheduler's
// workers, then submits their capture records in index order — exactly
// the records a sequential loop would have produced, in the same order,
// so reports and bench captures are byte-identical at any worker count.
func runResults(n int, fn func(i int) (morphs.Result, error)) ([]morphs.Result, error) {
	results, err := sched.MapResults(n, fn)
	if err != nil {
		return nil, err
	}
	morphs.SubmitResults(results...)
	return results, nil
}
