// Package analytic is the stack-distance-based analytical cache model
// behind fast-forward warmup (system.Config.FastForward): an exact LRU
// reuse-distance collector fed straight from the workload access stream
// (no event kernel), per-address-range reuse-distance histograms, and a
// miss-ratio/latency estimator for the Table 3 hierarchy derived from
// them. The approach follows Gysi et al., "A Fast Analytical Model of
// Fully Associative Caches" (PAPERS.md): reuse distances are orders of
// magnitude cheaper to collect than event-driven simulation and capture
// exactly the locality signal the hierarchy's miss behaviour depends on.
package analytic

// Stack computes exact LRU stack distances (the number of distinct keys
// touched since a key's previous touch) in O(log n) per access: keys map
// to monotonically increasing slots, a Fenwick tree counts live keys per
// slot range, and a compaction pass recycles the slot space — preserving
// recency order exactly — whenever it fills.
//
// Capacity is bounded: at compaction, only the keepMax most recently
// touched keys survive; older keys are dropped (counted in Dropped) and
// report cold on their next touch. keepMax is chosen far above every
// modeled cache capacity, so bounding never perturbs a finite estimate —
// a key older than keepMax distinct lines would miss everywhere anyway.
type Stack struct {
	bit  []uint32  // Fenwick tree: bit counts of live slots
	keys []uint64  // slot -> key mirror (stale below a key's newest slot)
	pos  flatTable // key -> slot
	next int       // next free slot (logical length)
	live int       // keys currently tracked
	keep int       // survivors per compaction (drop-tail bound)

	// Cold counts first touches (including re-touches of dropped keys);
	// Dropped counts keys discarded by the bound.
	Cold    uint64
	Dropped uint64

	// compact scratch, reused across compactions.
	scratch []uint64
}

// NewStack returns a stack-distance tracker keeping at most keepMax keys
// (≤ 0 selects a default of 1<<21, ≈128 MB of line-granular working set).
func NewStack(keepMax int) *Stack {
	if keepMax <= 0 {
		keepMax = 1 << 21
	}
	s := &Stack{keep: keepMax}
	s.growBIT(1 << 10)
	return s
}

// growBIT (re)allocates the Fenwick tree and slot mirror for n slots,
// empty.
func (s *Stack) growBIT(n int) {
	s.bit = make([]uint32, n+1)
	s.keys = make([]uint64, n)
	s.next = 0
}

// add updates the Fenwick tree at slot i by delta (+1/-1).
func (s *Stack) add(i int, delta int32) {
	for i++; i < len(s.bit); i += i & -i {
		s.bit[i] = uint32(int32(s.bit[i]) + delta)
	}
}

// sum returns the count of live slots in [0, i].
func (s *Stack) sum(i int) int {
	var n uint32
	for i++; i > 0; i -= i & -i {
		n += s.bit[i]
	}
	return int(n)
}

// Touch records an access to key and returns its LRU stack distance: the
// number of distinct keys touched since key's previous touch. cold is
// true on a first touch (or a re-touch after the key was dropped by the
// bound), in which case dist is meaningless.
func (s *Stack) Touch(key uint64) (dist int, cold bool) {
	if s.next > 0 && s.keys[s.next-1] == key {
		// Immediate re-touch of the MRU key: distance 0, recency order
		// unchanged — skip the table and Fenwick work entirely.
		return 0, false
	}
	if s.next+1 >= len(s.bit) {
		s.compact()
	}
	slot, ok := s.pos.upsert(key, s.next)
	if ok {
		// Keys more recent than this one = live keys in slots above it.
		dist = s.live - s.sum(slot)
		s.add(slot, -1)
	} else {
		cold = true
		s.Cold++
		s.live++
	}
	s.keys[s.next] = key
	s.add(s.next, 1)
	s.next++
	return dist, cold
}

// Live returns the number of keys currently tracked.
func (s *Stack) Live() int { return s.live }

// compact rebuilds the slot space: surviving keys are renumbered 0..n-1
// in recency order (so every subsequent distance is unchanged), the
// least-recent keys beyond the keep bound are dropped, and the Fenwick
// tree grows geometrically until it amortizes compaction cost against
// the keep bound. No sorting: the slot mirror already enumerates keys in
// recency order — a mirror entry is current iff it is the key's newest
// slot — so one linear walk collects the survivors.
func (s *Stack) compact() {
	s.scratch = s.scratch[:0]
	for slot := 0; slot < s.next; slot++ {
		k := s.keys[slot]
		if p, ok := s.pos.get(k); ok && p == slot {
			s.scratch = append(s.scratch, k)
		}
	}
	if drop := len(s.scratch) - s.keep; drop > 0 {
		s.Dropped += uint64(drop)
		s.scratch = s.scratch[drop:]
	}
	n := len(s.bit) - 1
	// Keep at least 7/8 of the slot space free (capped at 4x the keep
	// bound) so compactions stay rare: each one walks the whole slot
	// space, so at 1/8 occupancy the amortized cost is ~1.3 slot visits
	// per touch.
	for n < 2*len(s.scratch)+2 || (n < 4*s.keep && n < 8*len(s.scratch)) {
		n *= 2
	}
	s.growBIT(n)
	s.pos.reset(len(s.scratch))
	for i, k := range s.scratch {
		s.pos.put(k, i)
		s.keys[i] = k
		s.add(i, 1)
	}
	s.next = len(s.scratch)
	s.live = len(s.scratch)
}

// MRU returns up to n tracked keys, most recently touched first. Used by
// warm-state seeding to plan steady-state cache occupancy.
func (s *Stack) MRU(n int) []uint64 {
	if n > s.live {
		n = s.live
	}
	out := make([]uint64, 0, n)
	for slot := s.next - 1; slot >= 0 && len(out) < n; slot-- {
		k := s.keys[slot]
		if p, ok := s.pos.get(k); ok && p == slot {
			out = append(out, k)
		}
	}
	return out
}
