package hier

import (
	"fmt"

	"tako/internal/stats"
	"tako/internal/trace"
)

// hotMetrics holds pre-resolved registry handles for every fixed-name
// hot-path event, so incrementing is a nil check and an add — no map
// lookup, no allocation (bench_test.go at the repo root locks this in).
type hotMetrics struct {
	l1Hits, l1Misses   *stats.Counter
	el1Hits, el1Misses *stats.Counter
	l2Hits, l2Misses   *stats.Counter
	l3Hits, l3Misses   *stats.Counter

	// cb counts callback invocations by kind (indexed by CallbackKind).
	cb        [3]*stats.Counter
	cbSkipped *stats.Counter

	l2Writebacks *stats.Counter
	l3Writebacks *stats.Counter
	l3Backinval  *stats.Counter

	cohUpgrades      *stats.Counter
	cohInvalidations *stats.Counter
	cohDowngrades    *stats.Counter
	snoopMigrations  *stats.Counter

	ntStores       *stats.Counter
	flushLines     *stats.Counter
	prefetchIssued *stats.Counter

	rmoIssued, rmoHits, rmoMisses *stats.Counter

	// loadLat is the demand-load latency histogram (cycles); it powers
	// the p50/p90/p99 columns of metrics snapshots, complementing the
	// LoadLat Dist used by the figure tables.
	loadLat *stats.Histogram
}

func (m *hotMetrics) resolve(r *stats.Registry) {
	m.l1Hits, m.l1Misses = r.Counter("l1.hits"), r.Counter("l1.misses")
	m.el1Hits, m.el1Misses = r.Counter("el1.hits"), r.Counter("el1.misses")
	m.l2Hits, m.l2Misses = r.Counter("l2.hits"), r.Counter("l2.misses")
	m.l3Hits, m.l3Misses = r.Counter("l3.hits"), r.Counter("l3.misses")
	for k := CbMiss; k <= CbWriteback; k++ {
		m.cb[k] = r.Counter("cb." + k.String())
	}
	m.cbSkipped = r.Counter("cb.skipped")
	m.l2Writebacks = r.Counter("l2.writebacks")
	m.l3Writebacks = r.Counter("l3.writebacks")
	m.l3Backinval = r.Counter("l3.backinval")
	m.cohUpgrades = r.Counter("coh.upgrades")
	m.cohInvalidations = r.Counter("coh.invalidations")
	m.cohDowngrades = r.Counter("coh.downgrades")
	m.snoopMigrations = r.Counter("snoop.migrations")
	m.ntStores = r.Counter("nt.stores")
	m.flushLines = r.Counter("flush.lines")
	m.prefetchIssued = r.Counter("prefetch.issued")
	m.rmoIssued = r.Counter("rmo.issued")
	m.rmoHits = r.Counter("rmo.hits")
	m.rmoMisses = r.Counter("rmo.misses")
	m.loadLat = r.Histogram("load.latency")
}

// top returns the (hits, misses) pair for the level an access tops out
// at: the core L1d, or the engine L1d for engine-issued accesses.
func (m *hotMetrics) top(engine bool) (hits, misses *stats.Counter) {
	if engine {
		return m.el1Hits, m.el1Misses
	}
	return m.l1Hits, m.l1Misses
}

// componentNames pre-renders the per-tile trace component labels so the
// hot paths never format strings when emitting.
type componentNames struct {
	core, l2, l3 []string
}

func newComponentNames(tiles int) componentNames {
	var c componentNames
	for i := 0; i < tiles; i++ {
		c.core = append(c.core, fmt.Sprintf("core.%d", i))
		c.l2 = append(c.l2, fmt.Sprintf("l2.%d", i))
		c.l3 = append(c.l3, fmt.Sprintf("l3.%d", i))
	}
	return c
}

// Tracer returns the attached tracer (nil when tracing is off), so the
// engines and system plumbing share the hierarchy's tracer.
func (h *Hierarchy) Tracer() *trace.Tracer { return h.tracer }

// TraceSpan emits a span covering [start, end) cycles (no-op without an
// attached tracer).
func (h *Hierarchy) TraceSpan(start, end uint64, component, kind, detail string) {
	h.tracer.EmitSpan(start, end, component, kind, detail)
}
