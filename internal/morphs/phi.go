package morphs

import (
	"fmt"

	"tako/internal/core"
	"tako/internal/cpu"
	"tako/internal/engine"
	"tako/internal/mem"
	"tako/internal/sim"
	"tako/internal/system"
	"tako/internal/workloads"
)

// PHIVariant selects an implementation of the commutative scatter-update
// study (§8.1, Figs 13-14): one push iteration of PageRank.
type PHIVariant string

// PHI variants (Fig 13's bars).
const (
	PHIBaseline PHIVariant = "baseline" // atomic adds straight to vertex data
	PHIUB       PHIVariant = "ub"       // software update batching / propagation blocking [14,70]
	PHITako     PHIVariant = "tako"     // PHI on täkō: phantom buffer + onWriteback
	PHIIdeal    PHIVariant = "ideal"    // täkō with the idealized engine
	// PHIHier is hierarchical PHI (the paper's footnote 3: "täkō's
	// design allows hierarchical PHI as described in [95]"): a PRIVATE
	// phantom buffer per tile combines updates locally; its
	// onWriteback forwards combined updates into the SHARED PHI
	// Morph — the §4.3-permitted PRIVATE→SHARED direction.
	PHIHier PHIVariant = "hier"
)

// AllPHIVariants lists Fig 13's bars in order.
var AllPHIVariants = []PHIVariant{PHIBaseline, PHIUB, PHITako, PHIIdeal}

// PHIParams sizes the study. The paper runs a 16 M-vertex / 160 M-edge
// synthetic graph on 16 tiles; we scale the graph and the caches
// together (DESIGN.md §7) so vertex data still exceeds the LLC.
type PHIParams struct {
	V, E        int
	Communities int
	PIntra      float64
	Tiles       int
	Threads     int
	CacheScale  int
	// BinRangeWords is the vertex-data range one bin covers (sized to
	// fit a private cache during the bin phase).
	BinRangeWords int
	// Threshold is PHI's policy knob: lines with at least this many
	// buffered updates apply in place; others are logged to bins.
	Threshold int
	Seed      int64
	Core      cpu.Config
	Engine    engine.Config
}

// DefaultPHIParams returns the scaled study configuration.
func DefaultPHIParams() PHIParams {
	return PHIParams{
		V: 32 * 1024, E: 320 * 1024,
		Communities: 64, PIntra: 0.0, // PHI's graph is uniform-synthetic
		Tiles: 16, Threads: 16, CacheScale: 64,
		BinRangeWords: 256,
		Threshold:     6,
		Seed:          1,
		Core:          cpu.Goldmont(),
		Engine:        engine.DefaultConfig(),
	}
}

// phiView is the per-bank engine-local state of the PHI Morph: cursors
// into this bank's update bins.
// phiHierView is the engine-local state of hierarchical PHI's private
// combining Morph: its own phantom base and the shared Morph's region.
type phiHierView struct {
	base      mem.Addr
	shared    mem.Region
	forwarded uint64 // updates pushed into the SHARED Morph by this tile
}

type phiView struct {
	tile    int
	cursors []uint64   // per-bin flushed offsets (in words)
	wc      []mem.Line // per-bin write-combining buffers (engine SRAM)
	wcN     []int      // valid words per buffer
	// Study counters live on the view — one per tile, touched only by
	// that tile's callbacks — so a sharded run never shares them across
	// shards; runPHI sums the views after the run.
	inPlace uint64
	binned  uint64
}

// packUpdate packs a scatter update into one word: dst in the high half,
// contribution in the low half (both fit 32 bits at our scales).
func packUpdate(dst int, val uint64) uint64 {
	if val == 0 || val >= 1<<32 || dst >= 1<<31 {
		panic("phi: update does not fit packed format")
	}
	return uint64(dst)<<32 | val
}

func unpackUpdate(w uint64) (dst int, val uint64) {
	return int(w >> 32), w & 0xffffffff
}

func roundUp8(n uint64) uint64 { return (n + 7) &^ 7 }

// RunPHI executes one variant of the PageRank scatter phase (plus bin
// and vertex phases), verifies the final vertex data against the
// functional reference, and returns its Result. Runs are memoized under
// the run cache when enabled (SetRunCache).
func RunPHI(v PHIVariant, prm PHIParams) (Result, error) {
	return cachedRun("phi", string(v), prm, func() (Result, error) {
		return runPHI(v, prm)
	})
}

func runPHI(v PHIVariant, prm PHIParams) (Result, error) {
	cfg := system.Scaled(prm.Tiles, prm.CacheScale)
	cfg.Core = prm.Core
	cfg.Engine = prm.Engine
	if v == PHIBaseline || v == PHIUB {
		cfg.NoTako = true
	}
	if v == PHIIdeal {
		cfg.Engine = engine.IdealConfig()
	}
	s := system.New(cfg)

	g := workloads.GenUniform(prm.V, prm.E, prm.Seed)
	if prm.PIntra > 0 {
		g = workloads.GenCommunity(prm.V, prm.E, prm.Communities, prm.PIntra, prm.Seed)
	}
	gm := g.Layout(s.Space, s.H.DRAM.Store())
	ranks := s.Alloc("ranks", uint64(prm.V)*8)
	for i := 0; i < prm.V; i++ {
		s.H.DRAM.Store().WriteU64(ranks.Word(uint64(i)), workloads.InitialRank)
	}
	// Reference: one scatter phase over initial ranks.
	initRanks := make([]uint64, prm.V)
	for i := range initRanks {
		initRanks[i] = workloads.InitialRank
	}
	want := workloads.ApplyVisits(g, func(f func(workloads.EdgeVisit)) {
		workloads.VertexOrderedEdges(g, initRanks, f)
	})

	numBins := (prm.V + prm.BinRangeWords - 1) / prm.BinRangeWords
	threads := prm.Threads
	if threads > prm.Tiles {
		threads = prm.Tiles
	}
	sliceOf := func(t int) (lo, hi int) {
		lo = t * prm.V / threads
		hi = (t + 1) * prm.V / threads
		return
	}

	var runErr error
	var inPlaceTotal, binnedTotal, forwardedTotal uint64
	var morph *core.Morph
	privMorphs := make([]*core.Morph, threads)

	// edgePhase runs fn(src, dst, contrib) over each thread's slice,
	// loading ranks/offsets/neighbors through the hierarchy.
	edgeLoop := func(p *sim.Proc, c *cpu.Core, t int, upd func(p *sim.Proc, c *cpu.Core, dst int, contrib uint64)) {
		lo, hi := sliceOf(t)
		for src := lo; src < hi; src++ {
			off := c.Load(p, gm.OffsetAddr(src))
			end := c.Load(p, gm.OffsetAddr(src+1))
			if off == end {
				continue
			}
			rank := c.Load(p, ranks.Word(uint64(src)))
			contrib := rank / (end - off)
			c.Compute(p, 2)
			for e := off; e < end; e++ {
				dst := int(c.Load(p, gm.NeighborAddr(e)))
				c.Compute(p, 2)
				upd(p, c, dst, contrib)
			}
		}
	}

	// vertexPhase: every variant reads the accumulated vertex data and
	// writes the new rank.
	vertexPhase := func(p *sim.Proc, c *cpu.Core, t int) {
		lo, hi := sliceOf(t)
		for vtx := lo; vtx < hi; vtx++ {
			nv := c.Load(p, gm.VertexAddr(vtx))
			c.Compute(p, 3) // damping etc.
			c.Store(p, ranks.Word(uint64(vtx)), nv)
		}
	}

	switch v {
	case PHIBaseline:
		bar := s.Barrier(threads)
		s.H.SetDRAMPhase(nil, "edge")
		for t := 0; t < threads; t++ {
			t := t
			s.Go(t, "phi-base", func(p *sim.Proc, c *cpu.Core) {
				edgeLoop(p, c, t, func(p *sim.Proc, c *cpu.Core, dst int, contrib uint64) {
					c.AtomicAddLocal(p, gm.VertexAddr(dst), contrib)
				})
				bar.Arrive(p)
				s.H.SetDRAMPhase(p, "vertex")
				vertexPhase(p, c, t)
			})
		}

	case PHIUB:
		// Per-thread private bins: the edge phase packs each update
		// into one word (dst<<32 | contrib) and streams full lines to
		// the bins with write-combining non-temporal stores, as real
		// propagation blocking does [14, 70]; the bin phase applies
		// them with locality.
		binCap := roundUp8(uint64(2*prm.E/(threads*numBins) + 64))
		binBuf := s.Alloc("ub.bins", uint64(threads*numBins)*binCap*8)
		binBase := func(t, b int) mem.Addr {
			return binBuf.Base + mem.Addr(uint64(t*numBins+b)*binCap*8)
		}
		cursors := make([][]uint64, threads) // words flushed per bin
		wc := make([][]mem.Line, threads)    // write-combining buffers
		wcN := make([][]int, threads)
		for t := range cursors {
			cursors[t] = make([]uint64, numBins)
			wc[t] = make([]mem.Line, numBins)
			wcN[t] = make([]int, numBins)
		}
		bar := s.Barrier(threads)
		s.H.SetDRAMPhase(nil, "edge")
		for t := 0; t < threads; t++ {
			t := t
			s.Go(t, "phi-ub", func(p *sim.Proc, c *cpu.Core) {
				edgeLoop(p, c, t, func(p *sim.Proc, c *cpu.Core, dst int, contrib uint64) {
					b := dst / prm.BinRangeWords
					wc[t][b].SetWord(wcN[t][b], packUpdate(dst, contrib))
					wcN[t][b]++
					c.Compute(p, 2) // pack + bin index
					if wcN[t][b] == mem.WordsPerLine {
						if cursors[t][b]+8 > binCap {
							panic("ub bin overflow: raise slack")
						}
						c.StoreLineNT(p, binBase(t, b)+mem.Addr(cursors[t][b]*8), &wc[t][b])
						cursors[t][b] += 8
						wc[t][b] = mem.Line{}
						wcN[t][b] = 0
					}
				})
				// Drain partial write-combining buffers.
				for b := 0; b < numBins; b++ {
					if wcN[t][b] > 0 {
						c.StoreLineNT(p, binBase(t, b)+mem.Addr(cursors[t][b]*8), &wc[t][b])
						cursors[t][b] += 8
						wcN[t][b] = 0
					}
				}
				bar.Arrive(p)
				s.H.SetDRAMPhase(p, "bin")
				// Bin phase: thread t applies bins t, t+threads, ...
				for b := t; b < numBins; b += threads {
					for tt := 0; tt < threads; tt++ {
						n := cursors[tt][b]
						base := binBase(tt, b)
						for cur := uint64(0); cur < n; cur++ {
							w := c.Load(p, base+mem.Addr(cur*8))
							if w == 0 {
								continue // zero padding in the final line
							}
							dst, val := unpackUpdate(w)
							c.Compute(p, 1)
							c.AtomicAddLocal(p, gm.VertexAddr(dst), val)
						}
					}
				}
				bar.Arrive(p)
				s.H.SetDRAMPhase(p, "vertex")
				vertexPhase(p, c, t)
			})
		}

	case PHITako, PHIIdeal, PHIHier:
		// Bin storage per L3 bank; updates are packed one word each
		// and streamed from the engines with write-combining NT
		// stores, mirroring PHI's compact update logs [95].
		binCap := roundUp8(uint64(2*prm.E/(prm.Tiles*numBins) + 64))
		binBuf := s.Alloc("phi.bins", uint64(prm.Tiles*numBins)*binCap*8)
		binBase := func(bank, b int) mem.Addr {
			return binBuf.Base + mem.Addr(uint64(bank*numBins+b)*binCap*8)
		}
		spec := core.MorphSpec{
			Name: "phi",
			// onMiss: set line to the identity (zero) — the line is
			// already zero-allocated; just the fabric ops.
			OnMiss: &core.Callback{Instrs: 2, CritPath: 1, Fn: func(ctx *engine.Ctx) {}},
			// onWriteback: count updates; apply in place when dense,
			// log to this bank's bin otherwise (Table 4; ~21 instrs,
			// 35 cycles in the paper).
			OnWriteback: &core.Callback{
				Instrs: 21, CritPath: 8,
				Fn: func(ctx *engine.Ctx) {
					view := ctx.View().(*phiView)
					firstVtx := int((ctx.Addr - morph.Region.Base) / 8)
					n := 0
					for i := 0; i < mem.WordsPerLine; i++ {
						if ctx.Line.Word(i) != 0 {
							n++
						}
					}
					if n == 0 {
						return
					}
					if n >= prm.Threshold {
						// Dense: apply updates in place. The target
						// vertex words share one line, so this costs
						// about one memory access per writeback.
						for i := 0; i < mem.WordsPerLine; i++ {
							if val := ctx.Line.Word(i); val != 0 {
								ctx.AtomicAddWord(gm.VertexAddr(firstVtx+i), val)
								view.inPlace++
							}
						}
						return
					}
					// Sparse: log packed updates to this bank's bin
					// through the view's write-combining buffer. State
					// updates happen before any memory op so that
					// concurrent callbacks on this engine cannot
					// clobber each other's slots.
					for i := 0; i < mem.WordsPerLine; i++ {
						val := ctx.Line.Word(i)
						if val == 0 {
							continue
						}
						dst := firstVtx + i
						b := dst / prm.BinRangeWords
						view.wc[b].SetWord(view.wcN[b], packUpdate(dst, val))
						view.wcN[b]++
						view.binned++
						if view.wcN[b] == mem.WordsPerLine {
							cur := view.cursors[b]
							view.cursors[b] = cur + 8
							if cur+8 > binCap {
								panic("phi bin overflow: raise slack")
							}
							full := view.wc[b]
							view.wc[b] = mem.Line{}
							view.wcN[b] = 0
							ctx.StoreLineNT(binBase(view.tile, b)+mem.Addr(cur*8), &full)
						}
					}
				},
			},
			NewView: func(tile int) interface{} {
				return &phiView{
					tile:    tile,
					cursors: make([]uint64, numBins),
					wc:      make([]mem.Line, numBins),
					wcN:     make([]int, numBins),
				}
			},
		}
		// Hierarchical PHI: a PRIVATE combining buffer per tile whose
		// onWriteback forwards each combined update into the SHARED
		// Morph (footnote 3 / [95]).
		privSpec := core.MorphSpec{
			Name:   "phi-l2",
			OnMiss: &core.Callback{Instrs: 2, CritPath: 1, Fn: func(ctx *engine.Ctx) {}},
			OnWriteback: &core.Callback{
				Instrs: 16, CritPath: 6,
				Fn: func(ctx *engine.Ctx) {
					view := ctx.View().(*phiHierView)
					firstVtx := int((ctx.Addr - view.base) / 8)
					for i := 0; i < mem.WordsPerLine; i++ {
						if val := ctx.Line.Word(i); val != 0 {
							ctx.AtomicAddRemote(view.shared.Word(uint64(firstVtx+i)), val)
							view.forwarded++
						}
					}
				},
			},
			NewView: func(tile int) interface{} { return &phiHierView{} },
		}
		bar := s.Barrier(threads)
		s.H.SetDRAMPhase(nil, "edge")
		for t := 0; t < threads; t++ {
			t := t
			s.Go(t, "phi-tako", func(p *sim.Proc, c *cpu.Core) {
				if t == 0 {
					m, err := s.Tako.RegisterPhantom(p, spec, core.Shared, uint64(prm.V)*8, 0)
					if err != nil {
						runErr = err
					} else {
						morph = m
					}
				}
				// Publish the registration (or its failure) through a
				// barrier round: the classic clock-poll loop has no
				// deterministic sharded equivalent, and the barrier edge
				// makes morph/runErr safely visible to every thread.
				bar.Arrive(p)
				if runErr != nil {
					return
				}
				if v == PHIHier {
					m, err := s.Tako.RegisterPhantom(p, privSpec, core.Private, uint64(prm.V)*8, t)
					if err != nil {
						runErr = err
						return
					}
					vw := m.View(t).(*phiHierView)
					vw.base = m.Region.Base
					vw.shared = morph.Region
					privMorphs[t] = m
					// Edge phase: combine locally in the tile's own
					// phantom buffer — no cross-chip traffic per push.
					edgeLoop(p, c, t, func(p *sim.Proc, c *cpu.Core, dst int, contrib uint64) {
						c.AtomicAddLocal(p, m.Region.Word(uint64(dst)), contrib)
					})
					// Drain the private buffer into the shared level.
					s.Tako.FlushData(p, m)
					s.Tako.Unregister(p, m)
				} else {
					edgeLoop(p, c, t, func(p *sim.Proc, c *cpu.Core, dst int, contrib uint64) {
						// Push the update to the phantom buffer (RMO).
						c.AtomicAdd(p, morph.Region.Word(uint64(dst)), contrib)
					})
					c.DrainRMOs(p)
				}
				bar.Arrive(p)
				if t == 0 {
					// Flush buffered updates: remaining lines go
					// through onWriteback (bin or in-place); then
					// drain the views' partial write-combining lines.
					s.Tako.FlushData(p, morph)
					for bank := 0; bank < prm.Tiles; bank++ {
						view := morph.View(bank).(*phiView)
						for b := 0; b < numBins; b++ {
							if view.wcN[b] > 0 {
								c.StoreLineNT(p, binBase(bank, b)+mem.Addr(view.cursors[b]*8), &view.wc[b])
								view.cursors[b] += 8
								view.wcN[b] = 0
							}
						}
					}
					s.H.SetDRAMPhase(p, "bin")
				}
				bar.Arrive(p)
				// Bin phase: apply this thread's share of all banks'
				// bins.
				for b := t; b < numBins; b += threads {
					for bank := 0; bank < prm.Tiles; bank++ {
						view := morph.View(bank).(*phiView)
						n := view.cursors[b]
						base := binBase(bank, b)
						for cur := uint64(0); cur < n; cur++ {
							w := c.Load(p, base+mem.Addr(cur*8))
							if w == 0 {
								continue
							}
							dst, val := unpackUpdate(w)
							c.Compute(p, 1)
							c.AtomicAddLocal(p, gm.VertexAddr(dst), val)
						}
					}
				}
				bar.Arrive(p)
				if t == 0 {
					s.H.SetDRAMPhase(p, "vertex")
				}
				vertexPhase(p, c, t)
			})
		}

	default:
		return Result{}, fmt.Errorf("unknown PHI variant %q", v)
	}

	cycles := s.Run()
	if runErr != nil {
		return Result{}, runErr
	}
	// Fold the per-view study counters (each touched only by its own
	// tile's callbacks) into run-wide totals.
	if morph != nil {
		for bank := 0; bank < prm.Tiles; bank++ {
			view := morph.View(bank).(*phiView)
			inPlaceTotal += view.inPlace
			binnedTotal += view.binned
		}
	}
	for _, m := range privMorphs {
		if m != nil {
			forwardedTotal += m.View(m.Tile).(*phiHierView).forwarded
		}
	}
	// Verify the vertex phase wrote reference results into ranks.
	bad := 0
	first := -1
	var gotSum, wantSum uint64
	for i := 0; i < prm.V; i++ {
		got := s.H.DebugReadWord(ranks.Word(uint64(i)))
		gotSum += got
		wantSum += want[i]
		if got != want[i] {
			bad++
			if first < 0 {
				first = i
			}
		}
	}
	if bad > 0 {
		vline := gm.VertexAddr(first).Line()
		return Result{}, fmt.Errorf("%s: %d/%d vertices wrong (first %d: got %d want %d); sum got %d want %d; rmo=%d cbwb=%d inplace=%d binned=%d flush=%d\nvertex line %v history: %v",
			v, bad, prm.V, first, s.H.DebugReadWord(ranks.Word(uint64(first))), want[first],
			gotSum, wantSum,
			s.H.Metrics.Get("rmo.issued"), s.H.Metrics.Get("cb.onWriteback"),
			inPlaceTotal, binnedTotal, s.H.Metrics.Get("flush.lines"),
			vline, s.H.DebugHomeHistory(vline))
	}
	r := collect(s, "phi", string(v), cycles)
	r.Extra["updates.inplace"] = float64(inPlaceTotal)
	r.Extra["updates.binned"] = float64(binnedTotal)
	r.Extra["updates.forwarded"] = float64(forwardedTotal)
	return r, nil
}

// RunPHIAll runs every variant (Fig 13 + Fig 14 inputs), fanning
// independent variants across the scheduler's workers.
func RunPHIAll(prm PHIParams) (map[PHIVariant]Result, error) {
	return runAllVariants(AllPHIVariants, func(v PHIVariant) (Result, error) {
		return RunPHI(v, prm)
	})
}
