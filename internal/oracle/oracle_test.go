package oracle

import (
	"testing"
)

// TestOracleRandomTraces is the main differential-verification
// property: thousands of mixed operations per seed across multiple
// tiles, over real and phantom regions with Morphs attached, must
// produce zero oracle mismatches and zero invariant violations.
func TestOracleRandomTraces(t *testing.T) {
	seeds := []int64{1, 2, 3}
	total := 0
	for _, seed := range seeds {
		res, err := RunTrace(DefaultTraceConfig(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		total += res.Ops
		if err := res.Oracle.Err(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		t.Logf("seed %d: %d ops in %d cycles, %s", seed, res.Ops, res.Cycles, res.Oracle.Fingerprint())
	}
	// A wider machine: more tiles, more home banks, more cross-tile
	// coherence traffic.
	wide := DefaultTraceConfig(7)
	wide.Tiles = 6
	wide.OpsPerTile = 500
	res, err := RunTrace(wide)
	if err != nil {
		t.Fatal(err)
	}
	total += res.Ops
	if err := res.Oracle.Err(); err != nil {
		t.Errorf("wide: %v", err)
	}
	if total < 10000 {
		t.Fatalf("harness ran only %d ops, want >= 10000", total)
	}
}

// TestOracleDeterminism: equal seeds must reproduce the simulation
// byte-for-byte — cycles, counters, and every oracle observation.
func TestOracleDeterminism(t *testing.T) {
	cfg := DefaultTraceConfig(42)
	cfg.Tiles = 4
	cfg.OpsPerTile = 600
	a, err := RunTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("same seed diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a.Fingerprint, b.Fingerprint)
	}
	if err := a.Oracle.Err(); err != nil {
		t.Error(err)
	}
}

// TestOracleCatchesCorruption sanity-checks the checker itself: a trace
// whose shadow is deliberately corrupted afterwards must report final
// mismatches (guards against the oracle silently checking nothing).
func TestOracleCatchesCorruption(t *testing.T) {
	cfg := DefaultTraceConfig(5)
	cfg.Tiles = 2
	cfg.OpsPerTile = 50
	res, err := RunTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Oracle.Err(); err != nil {
		t.Fatal(err)
	}
	o := res.Oracle
	for _, tr := range o.regions {
		if tr.kind == Plain {
			o.Shadow().WriteU64(tr.region.Word(0), ^o.Shadow().ReadU64(tr.region.Word(0)))
			break
		}
	}
	o.VerifyFinal()
	if o.MismatchCount() == 0 {
		t.Fatal("corrupted shadow not detected — the final sweep is not checking")
	}
}
