package tlb

import (
	"testing"
	"testing/quick"

	"tako/internal/mem"
)

func small() *TLB {
	return New(Config{Name: "t", Entries: 2, PageBits: 12, HitLatency: 1, WalkLatency: 30})
}

func TestMissThenHit(t *testing.T) {
	tl := small()
	lat, hit := tl.Lookup(0x1234)
	if hit || lat != 31 {
		t.Fatalf("first lookup: lat=%d hit=%v", lat, hit)
	}
	lat, hit = tl.Lookup(0x1FFF) // same 4 KB page
	if !hit || lat != 1 {
		t.Fatalf("second lookup: lat=%d hit=%v", lat, hit)
	}
	if tl.Hits != 1 || tl.Misses != 1 {
		t.Fatalf("stats: %d/%d", tl.Hits, tl.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	tl := small()
	tl.Lookup(0x0000) // page 0
	tl.Lookup(0x1000) // page 1
	tl.Lookup(0x0000) // touch page 0: page 1 is now LRU
	tl.Lookup(0x2000) // page 2 evicts page 1
	if tl.Entries() != 2 {
		t.Fatalf("entries = %d", tl.Entries())
	}
	if _, hit := tl.Lookup(0x0000); !hit {
		t.Fatal("MRU page evicted")
	}
	if _, hit := tl.Lookup(0x1000); hit {
		t.Fatal("LRU page survived")
	}
}

func TestFlushRegion(t *testing.T) {
	tl := New(Config{Name: "t", Entries: 8, PageBits: 12, HitLatency: 1, WalkLatency: 30})
	tl.Lookup(0x1000)
	tl.Lookup(0x2000)
	tl.Lookup(0x9000)
	tl.FlushRegion(mem.Region{Base: 0x1000, Size: 0x2000}) // pages 1,2
	if _, hit := tl.Lookup(0x1000); hit {
		t.Fatal("flushed page still present")
	}
	if _, hit := tl.Lookup(0x9000); !hit {
		t.Fatal("unrelated page flushed")
	}
	if tl.Shootdowns != 1 {
		t.Fatalf("shootdowns = %d", tl.Shootdowns)
	}
}

func TestHugePages(t *testing.T) {
	tl := New(DefaultRTLBConfig())
	tl.Lookup(0x0)
	if _, hit := tl.Lookup(0x1F_FFFF); !hit {
		t.Fatal("same 2MB page missed")
	}
	if _, hit := tl.Lookup(0x20_0000); hit {
		t.Fatal("next 2MB page hit")
	}
}

func TestHitRate(t *testing.T) {
	tl := small()
	if tl.HitRate() != 1 {
		t.Fatal("empty TLB hit rate should be 1")
	}
	tl.Lookup(0)
	tl.Lookup(0)
	tl.Lookup(0)
	if hr := tl.HitRate(); hr < 0.66 || hr > 0.67 {
		t.Fatalf("hit rate = %v", hr)
	}
}

// Property: entry count never exceeds capacity.
func TestQuickCapacityBound(t *testing.T) {
	tl := New(Config{Name: "q", Entries: 4, PageBits: 12, HitLatency: 1, WalkLatency: 10})
	f := func(pages []uint16) bool {
		for _, p := range pages {
			tl.Lookup(mem.Addr(p) << 12)
			if tl.Entries() > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFlatArrayMatchesMapReference drives the flat-array TLB and a
// map-based reference model (the pre-flattening implementation) through
// the same access/flush sequence and requires identical hit/miss
// outcomes and latencies. Ticks strictly increase, so the LRU victim is
// unique and the two implementations cannot legally diverge.
func TestFlatArrayMatchesMapReference(t *testing.T) {
	cfg := Config{Name: "diff", Entries: 8, PageBits: 12, HitLatency: 1, WalkLatency: 10}
	tl := New(cfg)
	ref := make(map[mem.Addr]uint64) // page -> last-use tick
	tick := uint64(0)
	refLookup := func(a mem.Addr) bool {
		page := a &^ (1<<12 - 1)
		tick++
		if _, ok := ref[page]; ok {
			ref[page] = tick
			return true
		}
		if len(ref) >= cfg.Entries {
			var victim mem.Addr
			oldest, first := uint64(0), true
			for p, use := range ref {
				if first || use < oldest {
					victim, oldest, first = p, use, false
				}
			}
			delete(ref, victim)
		}
		ref[page] = tick
		return false
	}
	x := uint64(0x9E3779B9)
	next := func() uint64 { x ^= x << 13; x ^= x >> 7; x ^= x << 17; return x }
	for i := 0; i < 30000; i++ {
		a := mem.Addr(next() % (24 << 12)) // 24 pages over an 8-entry TLB
		lat, hit := tl.Lookup(a)
		if want := refLookup(a); hit != want {
			t.Fatalf("access %d (%v): hit=%v, reference says %v", i, a, hit, want)
		}
		wantLat := cfg.HitLatency
		if !hit {
			wantLat += cfg.WalkLatency
		}
		if lat != wantLat {
			t.Fatalf("access %d: latency %d, want %d", i, lat, wantLat)
		}
		if tl.Entries() != len(ref) {
			t.Fatalf("access %d: Entries=%d, reference holds %d", i, tl.Entries(), len(ref))
		}
		if i%1000 == 999 {
			r := mem.Region{Name: "f", Base: mem.Addr(next() % (24 << 12)), Size: 4 << 12}
			tl.FlushRegion(r)
			lo := r.Base &^ (1<<12 - 1)
			for p := range ref {
				if p >= lo && p < r.End() {
					delete(ref, p)
				}
			}
		}
	}
}

// TestSetAssociative exercises a non-default Ways configuration:
// conflict misses within one set must not evict entries of other sets.
func TestSetAssociative(t *testing.T) {
	tl := New(Config{Name: "sa", Entries: 8, PageBits: 12, HitLatency: 1, WalkLatency: 10, Ways: 2})
	// Pages 0, 4, 8 all index set 0 (4 sets); page 1 indexes set 1.
	tl.Lookup(0 << 12)
	tl.Lookup(1 << 12)
	tl.Lookup(4 << 12)
	tl.Lookup(8 << 12) // evicts page 0 (set 0 LRU), not page 1
	if _, hit := tl.Lookup(1 << 12); !hit {
		t.Fatal("conflict misses in set 0 evicted set 1's entry")
	}
	if _, hit := tl.Lookup(0 << 12); hit {
		t.Fatal("set-0 LRU entry survived a full set")
	}
}

// TestSetAssociativeGeometryPanics pins the config validation.
func TestSetAssociativeGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-divisible ways")
		}
	}()
	New(Config{Name: "bad", Entries: 8, PageBits: 12, Ways: 3})
}
