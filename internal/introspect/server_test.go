package introspect

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"tako/internal/cpu"
	"tako/internal/hier"
	"tako/internal/mem"
	"tako/internal/sim"
	"tako/internal/system"
)

// TestServerEndToEnd is the -http e2e smoke CI runs under -race: start a
// server on an ephemeral port, run a real captured simulation while
// polling it, check every endpoint returns well-formed data, and shut
// down cleanly.
func TestServerEndToEnd(t *testing.T) {
	hier.SetAttributionDefaults(true, 4)
	defer hier.SetAttributionDefaults(false, 0)

	srv, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read body: %v", path, err)
		}
		return resp.StatusCode, body
	}

	// Before any work: progress is valid JSON with the starting phase.
	srv.SetExperiments(1)
	if code, body := get("/progress"); code != http.StatusOK {
		t.Fatalf("/progress = %d: %s", code, body)
	}

	// Run a small captured simulation, as a driver would.
	system.StartCapture(system.CaptureConfig{})
	srv.StartExperiment("smoke")
	s := system.New(system.Scaled(2, 16))
	region := s.Alloc("data", 32*1024)
	s.Go(0, "w", func(p *sim.Proc, c *cpu.Core) {
		for i := 0; i < 200; i++ {
			c.Store(p, region.Base+mem.Addr(i*64), uint64(i))
		}
	})
	s.Go(1, "r", func(p *sim.Proc, c *cpu.Core) {
		p.Sleep(300)
		for i := 0; i < 200; i++ {
			c.Load(p, region.Base+mem.Addr(i*64))
		}
	})
	s.Run()
	system.Submit(system.LabelRun(s, "introspect/smoke", s.Ops()), 1, false)

	// Mid-capture: /metrics and /txn see the in-flight run.
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	var metrics struct {
		Runs []struct {
			Label    string               `json:"label"`
			TxnEdges []hier.TxnTransition `json:"txn_edges"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(body, &metrics); err != nil {
		t.Fatalf("/metrics is not valid JSON: %v", err)
	}
	if len(metrics.Runs) != 1 || metrics.Runs[0].Label != "introspect/smoke" {
		t.Fatalf("/metrics runs = %+v, want the live capture run", metrics.Runs)
	}
	if len(metrics.Runs[0].TxnEdges) == 0 {
		t.Error("/metrics run record has no txn edge coverage")
	}

	res, err := system.StopCapture()
	if err != nil {
		t.Fatal(err)
	}
	srv.PublishRuns(res.Runs)
	srv.FinishExperiment("smoke")
	srv.SetPhase("done")

	// Progress reflects the finished experiment and published runs.
	_, body = get("/progress")
	var prog progressDoc
	if err := json.Unmarshal(body, &prog); err != nil {
		t.Fatalf("/progress is not valid JSON: %v", err)
	}
	if prog.Phase != "done" {
		t.Errorf("phase = %q, want done", prog.Phase)
	}
	if prog.Experiments.Total != 1 || prog.Experiments.Done != 1 {
		t.Errorf("experiments = %+v, want 1/1", prog.Experiments)
	}
	if prog.Published != 1 {
		t.Errorf("published = %d, want 1", prog.Published)
	}
	if prog.Sched.Workers < 1 {
		t.Errorf("sched workers = %d, want >= 1", prog.Sched.Workers)
	}

	// Heatmap renders the access kind; JSON variant carries edges and the
	// unvisited complement.
	code, body = get("/txn")
	if code != http.StatusOK || !strings.Contains(string(body), "access") {
		t.Errorf("/txn = %d, body missing access kind table", code)
	}
	_, body = get("/txn?format=json")
	var cov struct {
		Edges     []hier.TxnTransition `json:"edges"`
		Unvisited []hier.TxnTransition `json:"unvisited"`
	}
	if err := json.Unmarshal(body, &cov); err != nil {
		t.Fatalf("/txn?format=json is not valid JSON: %v", err)
	}
	if len(cov.Edges) == 0 {
		t.Error("coverage JSON has no visited edges")
	}
	if len(cov.Edges)+len(cov.Unvisited) != len(hier.LegalEdges()) {
		t.Errorf("visited %d + unvisited %d != legal %d",
			len(cov.Edges), len(cov.Unvisited), len(hier.LegalEdges()))
	}

	// A fast-forwarded run surfaces the FF phase in /progress (the
	// gauges are process-wide and cumulative, so the section persists
	// after the run finishes).
	ffCfg := system.Scaled(2, 16)
	ffCfg.NoTako = true
	ffCfg.Hier.PrefetchDegree = 0
	ffCfg.FastForward = 4096
	fs := system.New(ffCfg)
	ffRegion := fs.Alloc("ff", 64*1024)
	fs.Go(0, "ff", func(p *sim.Proc, c *cpu.Core) {
		for i := 0; i < 6000; i++ {
			c.Load(p, ffRegion.Base+mem.Addr((i%512)*64))
		}
	})
	fs.Run()
	_, body = get("/progress")
	prog = progressDoc{}
	if err := json.Unmarshal(body, &prog); err != nil {
		t.Fatalf("/progress is not valid JSON: %v", err)
	}
	if prog.FastForward == nil {
		t.Error("/progress has no fastforward section after an FF run")
	} else if prog.FastForward.Accesses == 0 || prog.FastForward.Budget == 0 {
		t.Errorf("fastforward = %+v, want nonzero accesses and budget", prog.FastForward)
	}
	if code, body := get("/"); code != http.StatusOK || !strings.Contains(string(body), "fast-forward") {
		t.Errorf("index = %d, missing fast-forward tag: %.200s", code, body)
	}

	// Index page links everything; pprof endpoints respond.
	if code, body := get("/"); code != http.StatusOK || !strings.Contains(string(body), "/debug/pprof/") {
		t.Errorf("index = %d, missing pprof link: %.120s", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
	if code, _ := get("/nosuch"); code != http.StatusNotFound {
		t.Errorf("unknown path = %d, want 404", code)
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// After close the port stops accepting.
	if _, err := http.Get(base + "/progress"); err == nil {
		t.Error("server still serving after Close")
	}
}

// TestServerBadAddr pins the error path: an unbindable address fails at
// Start, not later in a goroutine.
func TestServerBadAddr(t *testing.T) {
	if _, err := Start("256.256.256.256:0"); err == nil {
		t.Fatal("Start on an invalid address did not error")
	}
}

// TestServerConcurrentPolling hammers the endpoints from several
// goroutines while state changes, for the race detector's benefit.
func TestServerConcurrentPolling(t *testing.T) {
	srv, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			srv.SetPhase(fmt.Sprintf("phase-%d", i))
			srv.StartExperiment(fmt.Sprintf("e%d", i))
			srv.PublishRuns([]system.RunRecord{{Label: fmt.Sprintf("r%d", i)}})
			srv.FinishExperiment(fmt.Sprintf("e%d", i))
			time.Sleep(time.Millisecond)
		}
	}()
	errc := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func() {
			for {
				select {
				case <-done:
					errc <- nil
					return
				default:
				}
				for _, p := range []string{"/progress", "/metrics", "/txn"} {
					resp, err := http.Get(base + p)
					if err != nil {
						errc <- fmt.Errorf("GET %s: %v", p, err)
						return
					}
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
				}
			}
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
