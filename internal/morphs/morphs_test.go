package morphs

import (
	"strings"
	"testing"
)

func TestResultHelpers(t *testing.T) {
	base := Result{Study: "s", Variant: "base", Cycles: 1000, EnergyPJ: 200}
	fast := Result{Study: "s", Variant: "fast", Cycles: 250, EnergyPJ: 120}
	if got := fast.Speedup(base); got != 4.0 {
		t.Fatalf("speedup = %v", got)
	}
	if got := fast.EnergySaving(base); got != 0.4 {
		t.Fatalf("energy saving = %v", got)
	}
	var zero Result
	if zero.Speedup(base) != 0 {
		t.Fatal("zero-cycle result should have 0 speedup")
	}
	if fast.EnergySaving(Result{}) != 0 {
		t.Fatal("zero-energy baseline should yield 0 saving")
	}
	if !strings.Contains(fast.String(), "s/fast") {
		t.Fatalf("String() = %q", fast.String())
	}
}

func TestPackUpdateRoundTrip(t *testing.T) {
	for _, c := range []struct {
		dst int
		val uint64
	}{{0, 1}, {123456, 99}, {1 << 30, (1 << 32) - 1}} {
		dst, val := unpackUpdate(packUpdate(c.dst, c.val))
		if dst != c.dst || val != c.val {
			t.Fatalf("round trip (%d,%d) -> (%d,%d)", c.dst, c.val, dst, val)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized value should panic")
		}
	}()
	packUpdate(1, 1<<32)
}

func TestDefaultParamsSane(t *testing.T) {
	d := DefaultDecompParams()
	if d.NumValues <= 0 || d.NumIndices < d.NumValues {
		t.Fatalf("decomp params: %+v", d)
	}
	p := DefaultPHIParams()
	if p.E < p.V || p.Threads != p.Tiles {
		t.Fatalf("phi params: %+v", p)
	}
	h := DefaultHATSParams()
	if h.Communities <= 0 || h.PIntra <= 0.5 {
		t.Fatalf("hats params: %+v", h)
	}
	n := DefaultNVMParams(4096)
	if n.TxnBytes != 4096 || n.Transactions <= 0 {
		t.Fatalf("nvm params: %+v", n)
	}
	if len(TxnSizes) == 0 || TxnSizes[len(TxnSizes)-1] != 128<<10 {
		t.Fatalf("txn sizes: %v", TxnSizes)
	}
}
