// Package stats provides the typed metrics registry (registry.go),
// streaming distributions, and table formatting for experiment reports.
// Experiment drivers print rows in the same form as the paper's figures;
// stats keeps that formatting in one place.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Dist is a streaming distribution: count, sum, min, max, plus Welford's
// online algorithm for numerically stable variance.
type Dist struct {
	N        uint64
	Sum      float64
	Min, Max float64

	// Welford state: running mean and sum of squared deviations.
	mean, m2 float64
}

// Observe adds one sample.
func (d *Dist) Observe(v float64) {
	if d.N == 0 || v < d.Min {
		d.Min = v
	}
	if d.N == 0 || v > d.Max {
		d.Max = v
	}
	d.N++
	d.Sum += v
	delta := v - d.mean
	d.mean += delta / float64(d.N)
	d.m2 += delta * (v - d.mean)
}

// Merge folds another distribution into d using Chan et al.'s parallel
// Welford combination, so per-shard distributions merged in a fixed
// order reproduce the moments of a single stream. Min/max/sum/count are
// order-independent; mean/m2 follow the pairwise update exactly.
func (d *Dist) Merge(o *Dist) {
	if o.N == 0 {
		return
	}
	if d.N == 0 {
		*d = *o
		return
	}
	if o.Min < d.Min {
		d.Min = o.Min
	}
	if o.Max > d.Max {
		d.Max = o.Max
	}
	n1, n2 := float64(d.N), float64(o.N)
	delta := o.mean - d.mean
	d.mean += delta * n2 / (n1 + n2)
	d.m2 += o.m2 + delta*delta*n1*n2/(n1+n2)
	d.N += o.N
	d.Sum += o.Sum
}

// Mean returns the sample mean (0 for an empty distribution).
func (d *Dist) Mean() float64 {
	if d.N == 0 {
		return 0
	}
	return d.Sum / float64(d.N)
}

// Var returns the population variance (0 for fewer than two samples).
func (d *Dist) Var() float64 {
	if d.N < 2 {
		return 0
	}
	return d.m2 / float64(d.N)
}

// Stddev returns the population standard deviation.
func (d *Dist) Stddev() float64 {
	return math.Sqrt(d.Var())
}

// Table accumulates rows and renders them with aligned columns, matching
// the row/series style of the paper's figures.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are kept as-is.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row formatting each value with %v, floats with 3
// significant decimals.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(row...)
}

// Rows returns the accumulated rows.
func (t *Table) Rows() [][]string { return t.rows }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			for i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Ratio returns a/b, or 0 when b is 0: experiment code divides event
// counts that may legitimately be zero at tiny scales.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// SortedKeys returns map keys in sorted order, for deterministic reports.
func SortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
