package oracle

import (
	"reflect"
	"testing"
)

// TestTraceTileParMatchesSequential pins the partitioned kernel on the
// full verification harness: the same seeded trace produces an
// identical fingerprint — cycle count, oracle digest, and the whole
// metrics registry — at every kernel shard width.
func TestTraceTileParMatchesSequential(t *testing.T) {
	base := DefaultTraceConfig(7)
	base.OpsPerTile = 500
	base.TilePar = 1
	ref, err := RunTrace(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Oracle.Err(); err != nil {
		t.Fatal(err)
	}
	for _, width := range []int{2, 4} {
		cfg := base
		cfg.TilePar = width
		res, err := RunTrace(cfg)
		if err != nil {
			t.Fatalf("tilepar=%d: %v", width, err)
		}
		if err := res.Oracle.Err(); err != nil {
			t.Fatalf("tilepar=%d: %v", width, err)
		}
		if res.Fingerprint != ref.Fingerprint {
			t.Errorf("tilepar=%d fingerprint diverged from sequential", width)
		}
	}
}

// exploreAll sweeps every scenario with a small budget at the given
// worker and shard widths and returns the full result.
func exploreAll(t *testing.T, workers, tilePar int) *ExploreResult {
	t.Helper()
	cfg := DefaultExploreConfig()
	cfg.MaxRuns = 6
	cfg.Workers = workers
	cfg.TilePar = tilePar
	res, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestExploreParallelMatchesSequential pins the explorer's batched
// parallel evaluation: the complete ExploreResult — scenario list, run
// count, choice-point high-water mark, and findings in order — is
// identical at 1 and 4 workers, and stays identical when each schedule
// additionally runs on a tile-sharded kernel. CI runs this under -race,
// making it the data-race probe for concurrent schedule evaluation.
func TestExploreParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	ref := exploreAll(t, 1, 0)
	if ref.Runs == 0 || ref.ChoicePoints == 0 {
		t.Fatalf("reference sweep did not explore: %+v", ref)
	}
	for _, f := range ref.Findings {
		t.Errorf("%s under schedule %v: %s", f.Scenario, trimSchedule(f.Schedule), f.Err)
	}
	cases := map[string]*ExploreResult{
		"workers=4":           exploreAll(t, 4, 0),
		"workers=4,tilepar=4": exploreAll(t, 4, 4),
		"workers=1,tilepar=4": exploreAll(t, 1, 4),
	}
	for name, got := range cases {
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("%s explore result diverged:\ngot:  %+v\nwant: %+v", name, got, ref)
		}
	}
}

// FuzzEpochSchedule is the epoch/drain-order fuzzer for the tile-sharded
// kernel: the fuzz input picks a scenario, a shard width, and a raw
// schedule of same-cycle tie resolutions — on a partitioned kernel those
// ties are exactly the cross-shard merge points, so permuting them
// permutes the order tile queues drain into each cycle. Every schedule
// must satisfy the oracle and the hierarchy invariants (CheckEvery keeps
// hier.CheckInvariants running throughout), and must reproduce the
// single-queue kernel's fingerprint byte for byte under the same
// choices.
func FuzzEpochSchedule(f *testing.F) {
	f.Add([]byte{0, 2})
	f.Add([]byte{1, 3, 1, 1})
	f.Add([]byte{2, 4, 0, 1, 0, 2})
	f.Add([]byte{5, 16, 2, 7, 1, 0, 3})
	scenarios := Scenarios()
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip()
		}
		if len(data) > 256 { // bounds choice-point churn per run
			data = data[:256]
		}
		sc := scenarios[int(data[0])%len(scenarios)]
		width := 2 + int(data[1])%15
		run := func(tilePar int) *TraceResult {
			tc := TraceConfig{
				Tiles:         sc.tiles,
				CacheScale:    sc.scale,
				CheckEvery:    64,
				Script:        sc.ops,
				Chooser:       &byteChooser{data: data[2:]},
				RecoverPanics: true,
				RealMorph:     sc.realMorph,
				TilePar:       tilePar,
			}
			res, err := RunTrace(tc)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Oracle.Err(); err != nil {
				t.Fatal(err)
			}
			return res
		}
		sharded := run(width)
		sequential := run(1)
		if sharded.Fingerprint != sequential.Fingerprint {
			t.Fatalf("tilepar=%d fingerprint diverged from the single-queue kernel", width)
		}
	})
}
