package hier

import (
	"fmt"

	"tako/internal/mem"
	"tako/internal/sim"
)

// RMOOp is a commutative reduction operator for remote memory
// operations. PHI supports any commutative update ("e.g., addition",
// §8.1); min/max enable label-propagation algorithms like connected
// components.
type RMOOp int

// Supported commutative operators.
const (
	RMOAdd RMOOp = iota
	RMOMin
	RMOMax
)

func (op RMOOp) apply(old, v uint64) uint64 {
	switch op {
	case RMOMin:
		if v < old {
			return v
		}
		return old
	case RMOMax:
		if v > old {
			return v
		}
		return old
	default:
		return old + v
	}
}

// AtomicAdd issues a relaxed remote memory operation (RMO, §8.1): a
// commutative add pushed to the shared level (or the SHARED Morph's
// lines), executing asynchronously off the core's critical path. The
// core only pays the issue cost; completion is tracked per tile and
// drained by DrainRMOs. Outstanding RMOs per tile are bounded by the
// RMOLimit semaphore — the issuing process blocks when it is exhausted.
func (h *Hierarchy) AtomicAdd(p *sim.Proc, tileID int, a mem.Addr, delta uint64) {
	h.AtomicRMO(p, tileID, a, RMOAdd, delta)
}

// AtomicRMO issues a relaxed remote memory operation with an arbitrary
// commutative operator.
func (h *Hierarchy) AtomicRMO(p *sim.Proc, tileID int, a mem.Addr, op RMOOp, v uint64) {
	t := h.tiles[tileID]
	t.rmo.Acquire(p) // backpressure: bounded in-flight RMOs
	t.rmoInflight.Add(1)
	h.hot.rmoIssued.Inc()
	t.K.Go(fmt.Sprintf("rmo@%d", tileID), func(pp *sim.Proc) {
		h.runRMO(pp, tileID, a, op, v)
		t.rmo.Release()
		t.rmoInflight.Done()
	})
}

// AtomicAddSync performs a blocking remote add (used by baselines
// without RMO support to model an ordinary atomic over the shared
// level).
func (h *Hierarchy) AtomicAddSync(p *sim.Proc, tileID int, a mem.Addr, delta uint64) {
	h.hot.rmoIssued.Inc()
	h.runRMO(p, tileID, a, RMOAdd, delta)
}

// AtomicRMOSync is the blocking form of AtomicRMO.
func (h *Hierarchy) AtomicRMOSync(p *sim.Proc, tileID int, a mem.Addr, op RMOOp, v uint64) {
	h.hot.rmoIssued.Inc()
	h.runRMO(p, tileID, a, op, v)
}

// runRMO executes the add at the home bank as a kindRMO transaction.
// Misses on SHARED Morph lines trigger onMiss (phantom lines are
// materialized in-cache with no memory access — PHI's key property);
// plain lines are fetched from DRAM.
func (h *Hierarchy) runRMO(p *sim.Proc, tileID int, a mem.Addr, op RMOOp, delta uint64) {
	if h.sharded {
		h.rmoSharded(p, tileID, a, op, delta)
		return
	}
	la := a.Line()
	home := h.HomeTile(a)
	x := h.getTxn(h.tiles[tileID])
	x.h, x.p, x.kind = h, p, kindRMO
	x.tileID, x.a, x.la = tileID, a, la
	x.home, x.hm = home, h.tiles[home]
	x.op, x.val = op, delta
	x.run()
	h.putTxn(x)
}

// DrainRMOs blocks until every RMO issued by tileID has completed (used
// before flushData so no update is lost, §8.1).
func (h *Hierarchy) DrainRMOs(p *sim.Proc, tileID int) {
	h.tiles[tileID].rmoInflight.Wait(p)
}
