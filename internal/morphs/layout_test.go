package morphs

import "testing"

func TestLayoutShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	prm := DefaultLayoutParams() // 4 MB AoS vs 2 MB LLC at 4 tiles; field 512 KB
	res, err := RunLayoutAll(prm)
	if err != nil {
		t.Fatal(err)
	}
	base := res[LayoutBaseline]
	tako := res[LayoutTako]
	ideal := res[LayoutIdeal]
	gather := res[LayoutGather]
	for _, r := range []Result{base, gather, tako, ideal} {
		t.Logf("%-9s %9d cycles dram=%6d extra=%v", r.Variant, r.Cycles, r.DRAMAccesses, r.Extra)
	}
	t.Logf("speedups: gather=%.2fx tako=%.2fx ideal=%.2fx", gather.Speedup(base), tako.Speedup(base), ideal.Speedup(base))
	// §5.2: the AoS→SoA Morph is a large win (paper: >4x with trrîp at
	// full scale). At our scale: a clear win, beating software gather.
	if tako.Speedup(base) < 1.5 {
		t.Errorf("täkō layout speedup %.2fx, want ≥1.5x", tako.Speedup(base))
	}
	if tako.Cycles > gather.Cycles {
		t.Errorf("täkō (%d) should beat software gather (%d)", tako.Cycles, gather.Cycles)
	}
	if tako.DRAMAccesses >= base.DRAMAccesses {
		t.Errorf("täkō DRAM (%d) should be below baseline (%d): packed field stays cached",
			tako.DRAMAccesses, base.DRAMAccesses)
	}
}
