package morphs

import (
	"fmt"

	"tako/internal/cache"
	"tako/internal/core"
	"tako/internal/cpu"
	"tako/internal/energy"
	"tako/internal/engine"
	"tako/internal/hier"
	"tako/internal/mem"
	"tako/internal/sim"
	"tako/internal/system"
	"tako/internal/workloads"
)

// DecompVariant selects an implementation of the decompression study
// (§3, Fig 6): computing the average of a Zipfian stream of reads from a
// base+delta lossy-compressed data set.
type DecompVariant string

// Decompression variants (Fig 6's bars).
const (
	DecompBaseline   DecompVariant = "baseline"   // decompress on the core, per access
	DecompPrecompute DecompVariant = "precompute" // vectorized: decompress everything up front
	DecompNDC        DecompVariant = "ndc"        // offload each decompression to the L2 engine [83]
	DecompTako       DecompVariant = "tako"       // phantom range + onMiss decompression
	DecompIdeal      DecompVariant = "ideal"      // täkō with the idealized engine
)

// AllDecompVariants lists Fig 6's bars in order.
var AllDecompVariants = []DecompVariant{
	DecompBaseline, DecompPrecompute, DecompNDC, DecompTako, DecompIdeal,
}

// DecompParams sizes the study (§3.3: 32 K Zipfian indices over 16 K
// values in blocks of 8; the 128 KB decompressed working set matches the
// private L2, which is what lets täkō memoize effectively — phantom
// lines are not backed below their registration level).
type DecompParams struct {
	NumValues  int
	NumIndices int
	BlockSize  int
	ZipfSkew   float64
	Seed       int64
	Tiles      int
	// PlainRRIP disables trrîp's engine-fill demotion (the §5.2
	// pollution-avoidance ablation): engine fills insert like demand
	// fills.
	PlainRRIP bool
}

// DefaultDecompParams returns the paper's configuration.
func DefaultDecompParams() DecompParams {
	return DecompParams{
		NumValues:  16 * 1024,
		NumIndices: 32 * 1024,
		BlockSize:  8,
		ZipfSkew:   1.25,
		Seed:       42,
		Tiles:      16,
	}
}

// decompInstrs is the per-value decompression work on a scalar core
// (index arithmetic, shift/mask extraction, saturating add for the lossy
// format), excluding the loads themselves. The premise of the study (§3)
// is that "cores are inefficient at data transformations".
const decompInstrs = 16

// decompVecInstrs is the per-line (8-value) cost when vectorized. The
// lossy format's data-dependent extraction vectorizes poorly (§3.3's
// pre-compute version lands close to the baseline in the paper), so the
// vector path gains only ~30% over scalar.
const decompVecInstrs = 100

type decompView struct{ base mem.Addr }

// RunDecompression executes one variant, verifies the computed sum
// against the functional reference, and returns its Result. Runs are
// memoized under the run cache when enabled (SetRunCache).
func RunDecompression(v DecompVariant, prm DecompParams) (Result, error) {
	return cachedRun("decompression", string(v), prm, func() (Result, error) {
		return runDecompression(v, prm)
	})
}

func runDecompression(v DecompVariant, prm DecompParams) (Result, error) {
	cfg := system.Default(prm.Tiles)
	if prm.PlainRRIP {
		cfg.Hier.NewPolicy = func() cache.Policy { return cache.NewRRIP() }
	}
	switch v {
	case DecompBaseline, DecompPrecompute:
		cfg.NoTako = true
	case DecompIdeal:
		cfg.Engine = engine.IdealConfig()
	}
	s := system.New(cfg)

	data := workloads.GenCompressed(prm.NumValues, prm.BlockSize, prm.Seed)
	cm := data.Layout(s.Space, s.H.DRAM.Store())
	indices := workloads.ZipfIndicesS(prm.NumIndices, prm.NumValues, prm.ZipfSkew, prm.Seed+1)
	var wantSum uint64
	for _, ix := range indices {
		wantSum += data.Value(ix)
	}

	var gotSum, decompressions, extraMemory uint64
	var runErr error

	// sumHandles folds completed async loads into gotSum.
	var handles []*cpu.LoadHandle
	finish := func(p *sim.Proc, c *cpu.Core) {
		c.Drain(p)
		for _, h := range handles {
			gotSum += h.Value
		}
		handles = nil
	}

	switch v {
	case DecompBaseline:
		s.Go(0, "avg", func(p *sim.Proc, c *cpu.Core) {
			for _, ix := range indices {
				c.Compute(p, 2) // index generation
				// Independent loads: the OOO window overlaps them;
				// sum(base_i) + sum(delta_i) = sum(value_i).
				handles = append(handles,
					c.LoadAsyncV(p, cm.Bases.Word(uint64(ix/prm.BlockSize))),
					c.LoadAsyncV(p, cm.Deltas.Word(uint64(ix))))
				c.Compute(p, decompInstrs)
				decompressions++
				c.Compute(p, 2) // accumulate
			}
			finish(p, c)
		})

	case DecompPrecompute:
		decomp := s.Alloc("decompressed", uint64(prm.NumValues)*8)
		extraMemory = decomp.Size
		s.Go(0, "avg", func(p *sim.Proc, c *cpu.Core) {
			// Phase 1: vectorized decompression, one line (8 values)
			// at a time — decompresses values that are never read
			// and writes a second copy of the data set.
			for i := 0; i < prm.NumValues; i += mem.WordsPerLine {
				c.Load(p, cm.Bases.Word(uint64(i/prm.BlockSize)))
				c.LoadLine(p, cm.Deltas.Word(uint64(i)))
				c.Compute(p, decompVecInstrs)
				var line mem.Line
				for j := 0; j < mem.WordsPerLine; j++ {
					line.SetWord(j, data.Value(i+j))
					decompressions++
				}
				c.StoreLine(p, decomp.Word(uint64(i)), &line)
			}
			// Phase 2: the simple average loop over the new array.
			for _, ix := range indices {
				c.Compute(p, 2)
				handles = append(handles, c.LoadAsyncV(p, decomp.Word(uint64(ix))))
				c.Compute(p, 2)
			}
			finish(p, c)
		})

	case DecompNDC:
		// Livia-style NDC [83]: each access ships the decompression
		// to the tile engine. Results are returned, never cached, so
		// repeated accesses repeat the work — and the round trip is
		// on the critical path every time.
		s.Go(0, "avg", func(p *sim.Proc, c *cpu.Core) {
			for _, ix := range indices {
				c.Compute(p, 2)
				c.Compute(p, 1) // issue the offload request
				p.Sleep(4)      // L1→engine invocation
				base := s.H.EngineLoadWord(p, 0, cm.Bases.Word(uint64(ix/prm.BlockSize)), hier.LevelNone)
				delta := s.H.EngineLoadWord(p, 0, cm.Deltas.Word(uint64(ix)), hier.LevelNone)
				s.Meter.Add(energy.EngineInstr, decompInstrs/2) // SIMD-ish engine ops
				p.Sleep(3)                                      // dataflow compute + response
				decompressions++
				gotSum += base + delta
				c.Compute(p, 2)
			}
		})

	case DecompTako, DecompIdeal:
		spec := core.MorphSpec{
			Name: "decompress",
			OnMiss: &core.Callback{
				// base-word load, delta-line load, 8-wide SIMD
				// extract+add pipeline, line fill.
				Instrs: 14, CritPath: 6,
				Fn: func(ctx *engine.Ctx) {
					first := int((ctx.Addr - ctx.View().(*decompView).base) / 8)
					ctx.LoadWord(cm.Bases.Word(uint64(first / prm.BlockSize)))
					ctx.LoadLine(cm.Deltas.Word(uint64(first)))
					for j := 0; j < mem.WordsPerLine; j++ {
						ctx.Line.SetWord(j, data.Value(first+j))
						decompressions++
					}
				},
			},
			NewView: func(tile int) interface{} { return &decompView{} },
		}
		s.Go(0, "avg", func(p *sim.Proc, c *cpu.Core) {
			m, err := s.Tako.RegisterPhantom(p, spec, core.Private, uint64(prm.NumValues)*8, 0)
			if err != nil {
				runErr = err
				return
			}
			m.View(0).(*decompView).base = m.Region.Base
			for _, ix := range indices {
				c.Compute(p, 2)
				handles = append(handles, c.LoadAsyncV(p, m.Region.Word(uint64(ix))))
				c.Compute(p, 2)
			}
			finish(p, c)
			s.Tako.Unregister(p, m)
		})

	default:
		return Result{}, fmt.Errorf("unknown decompression variant %q", v)
	}

	cycles := s.Run()
	if runErr != nil {
		return Result{}, runErr
	}
	if gotSum != wantSum {
		return Result{}, fmt.Errorf("%s: sum = %d, want %d", v, gotSum, wantSum)
	}
	r := collect(s, "decompression", string(v), cycles)
	r.Extra["decompressions"] = float64(decompressions)
	r.Extra["extra_memory_bytes"] = float64(extraMemory)
	return r, nil
}

// RunDecompressionAll runs every variant (Fig 6 + Fig 7 inputs),
// fanning independent variants across the scheduler's workers.
func RunDecompressionAll(prm DecompParams) (map[DecompVariant]Result, error) {
	return runAllVariants(AllDecompVariants, func(v DecompVariant) (Result, error) {
		return RunDecompression(v, prm)
	})
}
