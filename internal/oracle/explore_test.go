package oracle

import (
	"testing"
)

// TestExploreScenarios sweeps every scenario with a small schedule
// budget: a correct hierarchy must satisfy the oracle under every
// schedule the explorer tries.
func TestExploreScenarios(t *testing.T) {
	cfg := DefaultExploreConfig()
	cfg.MaxRuns = 8
	if testing.Short() {
		cfg.MaxRuns = 3
	}
	cfg.Logf = t.Logf
	res, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 6 {
		t.Fatalf("expected 6 scenarios, ran %v", res.Scenarios)
	}
	if res.Runs < len(res.Scenarios)*2 {
		t.Fatalf("expected ≥2 schedules per scenario, ran %d total", res.Runs)
	}
	if res.ChoicePoints == 0 {
		t.Fatal("no choice points seen: the chooser never armed or no events tied")
	}
	for _, f := range res.Findings {
		t.Errorf("%s under schedule %v: %s", f.Scenario, trimSchedule(f.Schedule), f.Err)
	}
}

// TestExploreDeterministic re-runs one perturbed schedule and checks the
// recorded choice trace matches: replaying a prefix must reproduce the
// same run shape or the explorer's findings aren't reproducible.
func TestExploreDeterministic(t *testing.T) {
	sc := Scenarios()[0]
	cfg := ExploreConfig{CheckEvery: 32}
	first := &schedChooser{prefix: []int{0, 1}}
	if msg := runSchedule(sc, cfg, first); msg != "" {
		t.Fatalf("schedule failed: %s", msg)
	}
	second := &schedChooser{prefix: []int{0, 1}}
	if msg := runSchedule(sc, cfg, second); msg != "" {
		t.Fatalf("replay failed: %s", msg)
	}
	if len(first.taken) != len(second.taken) {
		t.Fatalf("replay diverged: %d vs %d choice points", len(first.taken), len(second.taken))
	}
	for i := range first.taken {
		if first.taken[i] != second.taken[i] || first.arity[i] != second.arity[i] {
			t.Fatalf("replay diverged at choice %d: taken %d/%d arity %d/%d",
				i, first.taken[i], second.taken[i], first.arity[i], second.arity[i])
		}
	}
}

// FuzzExploreSchedule lets the fuzzer drive the scheduling choices
// directly: the first byte picks a scenario, the rest resolve choice
// points (modulo arity). Every reachable schedule is a legal hardware
// timing, so the oracle and invariants must hold under all of them.
func FuzzExploreSchedule(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 1})
	f.Add([]byte{2, 0, 1, 0, 2})
	f.Add([]byte{3, 5, 4, 3, 2, 1})
	f.Add([]byte{4, 1, 1, 1, 1, 1, 1, 1, 1})
	f.Add([]byte{5, 2, 7, 1, 0, 3})
	scenarios := Scenarios()
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			t.Skip()
		}
		if len(data) > 256 { // bounds choice-point churn per run
			data = data[:256]
		}
		sc := scenarios[int(data[0])%len(scenarios)]
		ch := &byteChooser{data: data[1:]}
		tc := TraceConfig{
			Tiles:         sc.tiles,
			CacheScale:    sc.scale,
			CheckEvery:    64,
			Script:        sc.ops,
			Chooser:       ch,
			RecoverPanics: true,
			RealMorph:     sc.realMorph,
		}
		res, err := RunTrace(tc)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Oracle.Err(); err != nil {
			t.Fatal(err)
		}
	})
}
