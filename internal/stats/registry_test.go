package stats

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
)

func TestRegistryCounterHandles(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("l2.misses")
	c.Inc()
	c.Add(4)
	if r.Get("l2.misses") != 5 {
		t.Fatalf("l2.misses = %d", r.Get("l2.misses"))
	}
	// Handle resolution is idempotent: same name, same cell.
	if r.Counter("l2.misses") != c {
		t.Fatal("re-resolved handle differs")
	}
	r.Inc("cold.path")
	r.Add("cold.path", 2)
	if r.Get("cold.path") != 3 {
		t.Fatalf("cold.path = %d", r.Get("cold.path"))
	}
	if r.Get("absent") != 0 {
		t.Fatal("absent counter != 0")
	}
}

func TestRegistryLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter("dram.reads", L("ctrl", 0)).Add(7)
	r.Counter("dram.reads", L("ctrl", 1)).Add(9)
	if r.Get("dram.reads{ctrl=0}") != 7 || r.Get("dram.reads{ctrl=1}") != 9 {
		t.Fatalf("labeled counters: %s", r.String())
	}
}

func TestNilRegistryAndHandlesAreSafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("g").Set(3)
	r.Histogram("h").Observe(10)
	r.Inc("y")
	if r.Get("x") != 0 || r.String() != "" {
		t.Fatal("nil registry recorded something")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 {
		t.Fatal("nil snapshot not empty")
	}
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(1)
	h.Observe(2)
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 || g.Mean() != 0 ||
		h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil handles recorded something")
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	for _, v := range []int64{3, 9, 1} {
		g.Set(v)
	}
	if g.Value() != 1 || g.Max() != 9 || g.Samples() != 3 {
		t.Fatalf("gauge = %+v", g)
	}
	if math.Abs(g.Mean()-13.0/3) > 1e-9 {
		t.Fatalf("mean = %v", g.Mean())
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for i := uint64(1); i <= 100; i++ {
		h.Observe(i)
	}
	if h.Count() != 100 || h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("hist = count %d min %d max %d", h.Count(), h.Min(), h.Max())
	}
	if h.Mean() != 50.5 {
		t.Fatalf("mean = %v", h.Mean())
	}
	// Log-bucketed quantiles are exact to within a factor of 2.
	p50 := h.Quantile(0.5)
	if p50 < 25 || p50 > 100 {
		t.Fatalf("p50 = %v", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 50 || p99 > 100 {
		t.Fatalf("p99 = %v", p99)
	}
	if h.Quantile(0) != 1 || h.Quantile(1) != 100 {
		t.Fatalf("q0 = %v q1 = %v", h.Quantile(0), h.Quantile(1))
	}
}

// Property: quantiles are monotone in q and clamped to [min, max].
func TestQuickHistogramQuantiles(t *testing.T) {
	f := func(raw []uint16) bool {
		var h Histogram
		for _, v := range raw {
			h.Observe(uint64(v))
		}
		if len(raw) == 0 {
			return h.Quantile(0.5) == 0
		}
		prev := -1.0
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if v < float64(h.Min()) || v > float64(h.Max()) || v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotDeterministicJSON(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Touch metrics in scrambled order: snapshots sort by key.
		r.Counter("z.last").Inc()
		r.Counter("a.first").Add(3)
		r.Gauge("queue.depth", L("ctrl", 1)).Set(4)
		r.Gauge("queue.depth", L("ctrl", 0)).Set(2)
		h := r.Histogram("lat")
		for i := uint64(0); i < 50; i++ {
			h.Observe(i * i)
		}
		return r
	}
	var b1, b2 bytes.Buffer
	if err := build().Snapshot().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().Snapshot().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("snapshots differ:\n%s\n---\n%s", b1.String(), b2.String())
	}
	var snap Snapshot
	if err := json.Unmarshal(b1.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if len(snap.Counters) != 2 || snap.Counters[0].Name != "a.first" {
		t.Fatalf("counters = %+v", snap.Counters)
	}
	if len(snap.Gauges) != 2 || snap.Gauges[0].Name != "queue.depth{ctrl=0}" {
		t.Fatalf("gauges = %+v", snap.Gauges)
	}
	if len(snap.Histograms) != 1 || snap.Histograms[0].Count != 50 {
		t.Fatalf("histograms = %+v", snap.Histograms)
	}
}
