// Package core implements the täkō programming interface — the paper's
// primary contribution (§4): Morphs bundle software callbacks (onMiss,
// onEviction, onWriteback) that the cache hierarchy invokes when data
// moves, transforming the semantics of an address range. Morphs register
// on phantom ranges (cache-only, not backed by memory) or on real
// addresses, at the PRIVATE (L2) or SHARED (L3) level.
//
// The Tako runtime owns registration bookkeeping, implements the
// hierarchy's Registry (address → Morph binding) and the engines'
// Program (Morph → callback specs and per-engine views), and provides
// flushData for synchronization between callbacks and threads (§4.4).
package core

import (
	"errors"
	"fmt"

	"tako/internal/engine"
	"tako/internal/hier"
	"tako/internal/mem"
	"tako/internal/sim"
)

// Level re-exports the hierarchy's Morph registration levels for API
// users.
type Level = hier.Level

// Registration levels (§4.1): PRIVATE registers at the tile's L2,
// SHARED at the L3. täkō supports neither L1 nor memory-side Morphs.
const (
	Private = hier.LevelPrivate
	Shared  = hier.LevelShared
)

// Callback is one Morph callback: a handler plus its static dataflow
// mapping (dynamic instruction count and critical-path length on the
// fabric).
type Callback struct {
	Instrs   int
	CritPath int
	Fn       func(*engine.Ctx)
}

// MorphSpec declares a Morph type: its callbacks and per-engine view
// constructor. Nil callbacks are not invoked (Table 1 rows marked "-").
type MorphSpec struct {
	Name        string
	OnMiss      *Callback
	OnEviction  *Callback
	OnWriteback *Callback
	// SequentialMiss serializes all onMiss invocations on an engine
	// (HATS protects its traversal stack this way, §8.2).
	SequentialMiss bool
	// NewView builds the engine-local view of the Morph object for a
	// tile (§4.2): state shared by all callbacks on that engine.
	// PRIVATE Morphs get one view; SHARED Morphs one per L3 bank.
	NewView func(tile int) interface{}
	// ProtectHint is the onReplacement extension the paper leaves to
	// future work (§4.5): when non-nil, victim selection avoids the
	// Morph's lines for which it returns true, letting software bias
	// the eviction policy (in the spirit of P-OPT [10]). Hints are
	// advisory: a set with no other candidate evicts anyway.
	ProtectHint func(mem.Addr) bool
}

// TotalInstrs returns the fabric instruction-memory footprint of the
// Morph's callbacks.
func (s MorphSpec) TotalInstrs() int {
	n := 0
	for _, cb := range []*Callback{s.OnMiss, s.OnEviction, s.OnWriteback} {
		if cb != nil {
			n += cb.Instrs
		}
	}
	return n
}

// Morph is a registered Morph instance (§4.2). Multiple instances of the
// same or different specs may be live simultaneously on disjoint ranges.
type Morph struct {
	ID     int
	Spec   MorphSpec
	Level  Level
	Region mem.Region
	// Tile is the registering tile: PRIVATE Morphs flush there.
	Tile int

	tako         *Tako
	views        map[int]interface{}
	unregistered bool
}

// Views returns the Morph's engine views keyed by tile, letting software
// initialize local state (§4.2: "views are gathered in the views
// array").
func (m *Morph) Views() map[int]interface{} { return m.views }

// View returns (creating if needed) the view on one tile.
func (m *Morph) View(tile int) interface{} {
	if v, ok := m.views[tile]; ok {
		return v
	}
	if m.Spec.NewView == nil {
		return nil
	}
	v := m.Spec.NewView(tile)
	m.views[tile] = v
	return v
}

// Tako is the runtime connecting software, the cache hierarchy, and the
// engines. It implements hier.Registry and engine.Program.
//
// The registry is partitioned per tile: every tile holds its own slice
// of the live Morphs, and Binding/Spec/View only ever read the slice of
// the tile they are asked about. On a classic (single-kernel) build the
// per-tile slices are updated synchronously and are always identical; on
// a sharded build each slice is owned by its tile's shard, and
// registration broadcasts the new Morph to every other shard as
// lookahead-delayed mailbox messages, waiting for their acknowledgements
// before the registering thread proceeds. Remote tiles therefore observe
// a registration one epoch late at the earliest — mirroring the TLB
// shootdown a real OS would need — and no shard ever reads registry
// state another shard is mutating.
type Tako struct {
	K     *sim.Kernel  // classic kernel; nil on a sharded build
	Sh    *sim.Sharded // sharded engine; nil on a classic build
	Space *mem.Space
	H     *hier.Hierarchy
	E     *engine.Engines

	morphs  [][]*Morph // per-tile registry views (sized at Attach)
	nextSeq []int      // per-tile registration sequence numbers

	// RegisterCost models the OS work of (un)registration: page-table
	// style bookkeeping plus TLB shootdowns (§6).
	RegisterCost sim.Cycle
}

// idStripe separates per-tile Morph ID ranges on sharded builds: tile t
// allocates IDs in (t*idStripe, (t+1)*idStripe], so concurrent
// registrations on different tiles mint IDs that depend only on their
// own tile's registration history.
const idStripe = 1 << 20

// New creates the runtime. Attach the hierarchy and engines with Attach
// before registering Morphs.
func New(k *sim.Kernel, space *mem.Space) *Tako {
	return &Tako{K: k, Space: space, RegisterCost: 1000}
}

// NewSharded creates the runtime for a sharded machine. Registration
// state is broadcast between shards by message; see the Tako doc.
func NewSharded(sh *sim.Sharded, space *mem.Space) *Tako {
	return &Tako{Sh: sh, Space: space, RegisterCost: 1000}
}

// Attach wires the runtime to its hierarchy and engines and sizes the
// per-tile registry views.
func (t *Tako) Attach(h *hier.Hierarchy, e *engine.Engines) {
	t.H = h
	t.E = e
	if n := h.Tiles(); len(t.morphs) != n {
		t.morphs = make([][]*Morph, n)
		t.nextSeq = make([]int, n)
	}
}

// Binding implements hier.Registry: resolve a from tile's view of the
// registry.
func (t *Tako) Binding(tile int, a mem.Addr) (hier.Binding, bool) {
	for _, m := range t.morphs[tile] {
		if m.Region.Contains(a) {
			return hier.Binding{
				MorphID:      m.ID,
				Level:        m.Level,
				Phantom:      m.Region.Phantom,
				Region:       m.Region,
				HasMiss:      m.Spec.OnMiss != nil,
				HasEviction:  m.Spec.OnEviction != nil,
				HasWriteback: m.Spec.OnWriteback != nil,
				Protected:    m.Spec.ProtectHint,
			}, true
		}
	}
	return hier.Binding{}, false
}

// Spec implements engine.Program.
func (t *Tako) Spec(morphID, tile int, kind hier.CallbackKind) (engine.Spec, bool) {
	m := t.byID(morphID, tile)
	if m == nil {
		return engine.Spec{}, false
	}
	var cb *Callback
	seq := false
	switch kind {
	case hier.CbMiss:
		cb, seq = m.Spec.OnMiss, m.Spec.SequentialMiss
	case hier.CbEviction:
		cb = m.Spec.OnEviction
	case hier.CbWriteback:
		cb = m.Spec.OnWriteback
	}
	if cb == nil {
		return engine.Spec{}, false
	}
	return engine.Spec{
		Cost:       engine.CallbackCost{Instrs: cb.Instrs, CritPath: cb.CritPath},
		Sequential: seq,
		Fn:         cb.Fn,
	}, true
}

// View implements engine.Program.
func (t *Tako) View(morphID, tile int) interface{} {
	m := t.byID(morphID, tile)
	if m == nil {
		return nil
	}
	return m.View(tile)
}

func (t *Tako) byID(id, tile int) *Morph {
	for _, m := range t.morphs[tile] {
		if m.ID == id {
			return m
		}
	}
	return nil
}

// Morphs returns the live registrations (tile 0's view; every tile sees
// the same set once in-flight registration broadcasts drain).
func (t *Tako) Morphs() []*Morph {
	if len(t.morphs) == 0 {
		return nil
	}
	return t.morphs[0]
}

var (
	// ErrOverlap is returned when a registration overlaps a live Morph
	// (§4.1: only one Morph per address).
	ErrOverlap = errors.New("tako: address range already has a Morph registered")
	// ErrBadLevel rejects registrations outside PRIVATE/SHARED.
	ErrBadLevel = errors.New("tako: Morphs register at PRIVATE or SHARED only")
)

// origin returns the tile whose registry view the calling proc owns: the
// proc's shard on a sharded build, or the registering tile classically
// (where every view is identical anyway).
func (t *Tako) origin(p *sim.Proc, tile int) int {
	if t.Sh != nil {
		return t.Sh.ShardOf(p.Kernel())
	}
	return tile
}

// validate checks a registration against one tile's registry view.
// Overlap is checked against that view only: phantom ranges cannot
// overlap across tiles by construction (per-tile stripes), and real-range
// registrations racing from different tiles within one lookahead window
// are a workload bug täkō's OS support would also not catch (§6).
func (t *Tako) validate(spec MorphSpec, level Level, region mem.Region, tile int) error {
	if level != Private && level != Shared {
		return ErrBadLevel
	}
	for _, m := range t.morphs[tile] {
		if region.Base < m.Region.End() && m.Region.Base < region.End() {
			return fmt.Errorf("%w: %v overlaps %v", ErrOverlap, region, m.Region)
		}
	}
	if t.E != nil {
		if err := t.E.ValidateFit(spec.TotalInstrs()); err != nil {
			return err
		}
	}
	return nil
}

func (t *Tako) install(p *sim.Proc, spec MorphSpec, level Level, region mem.Region, tile int) *Morph {
	origin := t.origin(p, tile)
	var id int
	if t.Sh != nil {
		// Stripe IDs per registering tile so concurrent registrations
		// mint IDs independent of cross-tile interleaving.
		t.nextSeq[origin]++
		id = t.nextSeq[origin] + origin*idStripe
	} else {
		// Classic builds have one logical registry: a single global
		// sequence, so IDs minted from different tiles never collide.
		t.nextSeq[0]++
		id = t.nextSeq[0]
	}
	m := &Morph{
		ID: id, Spec: spec, Level: level, Region: region, Tile: tile,
		tako: t, views: make(map[int]interface{}),
	}
	// Eagerly create views so software can initialize local state:
	// one for PRIVATE, one per bank for SHARED (§4.2). Views built here
	// become visible to remote shards through the registration broadcast,
	// which is the happens-before edge.
	if spec.NewView != nil {
		if level == Private {
			m.View(tile)
		} else {
			for i := 0; i < t.H.Tiles(); i++ {
				m.View(i)
			}
		}
	}
	t.publish(p, origin, func(view *[]*Morph) {
		*view = append(*view, m)
	})
	p.Sleep(t.RegisterCost) // OS bookkeeping + TLB shootdown (§6)
	return m
}

// publish applies a registry mutation to every tile's view. Classic
// builds mutate all views synchronously. Sharded builds mutate the
// origin's view directly and ship the mutation to every other shard as a
// mailbox message, waiting for all acknowledgements — the message-passing
// analogue of a TLB shootdown, and the reason remote shards never
// observe a half-made registration.
func (t *Tako) publish(p *sim.Proc, origin int, mutate func(view *[]*Morph)) {
	if t.Sh == nil {
		for i := range t.morphs {
			mutate(&t.morphs[i])
		}
		return
	}
	mutate(&t.morphs[origin])
	sh := t.Sh.Shard(origin)
	la := t.Sh.Lookahead()
	acks := make([]*sim.Future, 0, len(t.morphs)-1)
	for i := range t.morphs {
		if i == origin {
			continue
		}
		// Several acks are outstanding at once, and a completed pooled
		// future recycles before the loop below reaches it — use fresh
		// futures.
		f := sim.NewFuture(p.Kernel())
		acks = append(acks, f)
		i := i
		sh.Send(i, la, func() {
			mutate(&t.morphs[i])
			t.Sh.Shard(i).SendComplete(origin, la, f)
		})
	}
	for _, f := range acks {
		p.Wait(f)
	}
}

// RegisterPhantom allocates a phantom address range of the given size
// and registers the Morph on it (§4.1). Phantom data lives only in
// caches; onMiss and onWriteback define the semantics of loads and
// stores to the range.
func (t *Tako) RegisterPhantom(p *sim.Proc, spec MorphSpec, level Level, size uint64, tile int) (*Morph, error) {
	origin := t.origin(p, tile)
	var region mem.Region
	if t.Sh != nil {
		// Per-tile phantom stripes keep concurrently allocated ranges
		// independent of cross-shard timing.
		region = t.Space.AllocPhantomAt(origin, spec.Name, size)
	} else {
		region = t.Space.AllocPhantom(spec.Name, size)
	}
	if err := t.validate(spec, level, region, origin); err != nil {
		t.Space.Free(region)
		return nil, err
	}
	return t.install(p, spec, level, region, tile), nil
}

// RegisterReal registers the Morph over existing, memory-backed
// addresses. The range is flushed from all caches first so stale copies
// cannot bypass the new semantics (§4.1).
func (t *Tako) RegisterReal(p *sim.Proc, spec MorphSpec, level Level, region mem.Region, tile int) (*Morph, error) {
	if region.Phantom {
		return nil, errors.New("tako: RegisterReal requires a real region")
	}
	if err := t.validate(spec, level, region, t.origin(p, tile)); err != nil {
		return nil, err
	}
	t.H.InvalidateRegion(p, region)
	return t.install(p, spec, level, region, tile), nil
}

// FlushData flushes all of the Morph's cached data, triggering
// onEviction/onWriteback, and blocks until every callback completes:
// afterwards there are no further racing writes from callbacks (§4.4).
func (t *Tako) FlushData(p *sim.Proc, m *Morph) {
	t.H.FlushRegion(p, m.Tile, m.Region, m.Level)
}

// Unregister removes the Morph: its range is flushed (with callbacks),
// the registration is dropped, and phantom ranges are de-allocated
// (§4.1).
func (t *Tako) Unregister(p *sim.Proc, m *Morph) {
	if m.unregistered {
		return
	}
	t.FlushData(p, m)
	m.unregistered = true
	t.publish(p, t.origin(p, m.Tile), func(view *[]*Morph) {
		for i, mm := range *view {
			if mm == m {
				*view = append((*view)[:i], (*view)[i+1:]...)
				break
			}
		}
	})
	if m.Region.Phantom {
		t.Space.Free(m.Region)
	}
	p.Sleep(t.RegisterCost)
}
