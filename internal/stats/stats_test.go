package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCountersAddAndGet(t *testing.T) {
	var c Counters
	c.Add("x", 5)
	c.Inc("x")
	c.Add("y", 2)
	if c.Get("x") != 6 || c.Get("y") != 2 || c.Get("z") != 0 {
		t.Fatalf("x=%d y=%d z=%d", c.Get("x"), c.Get("y"), c.Get("z"))
	}
}

func TestCountersOrderIsFirstTouch(t *testing.T) {
	var c Counters
	c.Inc("b")
	c.Inc("a")
	c.Inc("b")
	names := c.Names()
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Fatalf("names = %v", names)
	}
}

func TestCountersReset(t *testing.T) {
	var c Counters
	c.Add("x", 9)
	c.Reset()
	if c.Get("x") != 0 {
		t.Fatal("reset did not zero")
	}
	if len(c.Names()) != 1 {
		t.Fatal("reset dropped names")
	}
}

func TestDist(t *testing.T) {
	var d Dist
	if d.Mean() != 0 {
		t.Fatal("empty mean != 0")
	}
	for _, v := range []float64{2, 4, 6} {
		d.Observe(v)
	}
	if d.N != 3 || d.Min != 2 || d.Max != 6 || d.Mean() != 4 {
		t.Fatalf("dist = %+v mean=%v", d, d.Mean())
	}
}

func TestQuickDistBounds(t *testing.T) {
	f := func(raw []int16) bool {
		var d Dist
		for _, v := range raw {
			d.Observe(float64(v))
		}
		vals := raw
		if len(vals) == 0 {
			return d.N == 0
		}
		return d.Min <= d.Mean() && d.Mean() <= d.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Fig X", "variant", "speedup")
	tbl.AddRowf("baseline", 1.0)
	tbl.AddRowf("tako", 4.2)
	s := tbl.String()
	for _, want := range []string{"Fig X", "variant", "baseline", "4.200"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
	if len(tbl.Rows()) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows()))
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Fatal("ratio wrong")
	}
	if Ratio(1, 0) != 0 {
		t.Fatal("ratio by zero should be 0")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]uint64{"b": 1, "a": 2, "c": 3}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("keys = %v", keys)
	}
}
