package system

import (
	"bytes"
	"encoding/json"
	"testing"

	"tako/internal/cpu"
	"tako/internal/mem"
	"tako/internal/sim"
	"tako/internal/trace"
)

// captureWorkload builds a small system under the active capture, runs a
// strided store/load loop, and labels the run.
func captureWorkload(t *testing.T, label string) {
	t.Helper()
	s := New(Scaled(2, 16))
	region := s.Alloc("data", 64*1024)
	s.Go(0, "w", func(p *sim.Proc, c *cpu.Core) {
		for i := 0; i < 400; i++ {
			c.Store(p, region.Base+mem.Addr(i*64), uint64(i))
		}
	})
	s.Go(1, "r", func(p *sim.Proc, c *cpu.Core) {
		p.Sleep(500)
		// Two passes over a small window, so the second pass hits in L1.
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < 8; i++ {
				c.Load(p, region.Base+mem.Addr(i*64))
			}
		}
		for i := 0; i < 400; i++ {
			c.Load(p, region.Base+mem.Addr(i*64))
		}
	})
	s.Run()
	Submit(LabelRun(s, label, s.Ops()), 1.5, false)
}

// TestCaptureEndToEnd runs a workload through the full capture path —
// typed metrics, run records, and a Chrome trace sink — under whatever
// detector the test binary was built with (CI runs this with -race; the
// kernel is single-threaded, so this pins that down rather than assumes
// it).
func TestCaptureEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	sink, err := trace.SinkFor("chrome", &buf)
	if err != nil {
		t.Fatal(err)
	}
	StartCapture(CaptureConfig{Sink: sink})
	captureWorkload(t, "test/e2e")
	res, err := StopCapture()
	if err != nil {
		t.Fatal(err)
	}

	if len(res.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(res.Runs))
	}
	if res.ExecMS != 1.5 || res.Cached != 0 {
		t.Errorf("ExecMS = %v, Cached = %d; want 1.5, 0", res.ExecMS, res.Cached)
	}
	r := res.Runs[0]
	if r.Label != "test/e2e" {
		t.Errorf("label = %q", r.Label)
	}
	if r.Cycles == 0 || r.Ops == 0 || r.KernelEvents == 0 {
		t.Errorf("empty run record: %+v", r)
	}
	hits := false
	for _, c := range r.Metrics.Counters {
		if c.Name == "l1.hits" && c.Value > 0 {
			hits = true
		}
	}
	if !hits {
		t.Error("metrics snapshot missing l1.hits")
	}

	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	spans, named := 0, false
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			spans++
		}
		if e.Ph == "M" && e.Name == "process_name" {
			named = true
		}
	}
	if spans == 0 {
		t.Error("trace has no spans")
	}
	if !named {
		t.Error("trace process was never named by LabelRun")
	}
}

// TestCaptureByteDeterministic runs the identical workload twice through
// separate captures and requires byte-identical trace and metrics
// serializations — the property the golden tests and CI ops gate rely on.
func TestCaptureByteDeterministic(t *testing.T) {
	once := func() (traceOut, metricsOut []byte) {
		var tb, mb bytes.Buffer
		sink, err := trace.SinkFor("jsonl", &tb)
		if err != nil {
			t.Fatal(err)
		}
		StartCapture(CaptureConfig{Sink: sink, TraceKinds: []string{"l3.*", "dram.*", "cb.*"}})
		captureWorkload(t, "test/det")
		res, err := StopCapture()
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteMetricsReport(&mb, res.Runs); err != nil {
			t.Fatal(err)
		}
		return tb.Bytes(), mb.Bytes()
	}
	t1, m1 := once()
	t2, m2 := once()
	if !bytes.Equal(t1, t2) {
		t.Error("trace output differs between identical runs")
	}
	if !bytes.Equal(m1, m2) {
		t.Error("metrics report differs between identical runs")
	}
	if len(t1) == 0 {
		t.Error("empty trace output")
	}
}

// TestCaptureInactiveIsInert verifies the no-capture configuration every
// library user and test runs with: Systems build untraced, LabelRun
// drops, StopCapture returns nothing.
func TestCaptureInactiveIsInert(t *testing.T) {
	s := New(Default(2))
	if s.captured {
		t.Fatal("system captured with no active capture")
	}
	Submit(LabelRun(s, "ignored", 1), 1, false)
	res, err := StopCapture()
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != nil || res.ExecMS != 0 || res.Cached != 0 {
		t.Fatalf("res = %+v, want zero value", res)
	}
}

// TestCaptureProgress pins the live-introspection counters: zero when
// disarmed, counting systems and submissions while a window is open, and
// CaptureRuns returning an isolated copy of the submitted records.
func TestCaptureProgress(t *testing.T) {
	if p := CaptureProgress(); p.Active || p.Systems != 0 || p.Submitted != 0 {
		t.Fatalf("disarmed progress = %+v, want zero", p)
	}
	if CaptureRuns() != nil {
		t.Fatal("disarmed CaptureRuns != nil")
	}

	StartCapture(CaptureConfig{FirstPid: 7})
	if p := CaptureProgress(); !p.Active || p.Systems != 0 {
		t.Fatalf("armed empty progress = %+v", p)
	}
	captureWorkload(t, "test/progress")
	p := CaptureProgress()
	if p.Systems != 1 || p.Submitted != 1 || p.Cached != 0 || p.ExecMS != 1.5 {
		t.Fatalf("mid-window progress = %+v, want 1 system, 1 submitted, 1.5 exec ms", p)
	}
	live := CaptureRuns()
	if len(live) != 1 || live[0].Label != "test/progress" {
		t.Fatalf("CaptureRuns = %+v", live)
	}
	// The copy is isolated: mutating it must not corrupt the capture log.
	live[0].Label = "mutated"
	res, err := StopCapture()
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs[0].Label != "test/progress" {
		t.Error("CaptureRuns returned a view into the capture log, not a copy")
	}
	// FirstPid offsets pids but not the Systems count.
	if res.Systems != 1 {
		t.Errorf("Systems = %d, want 1", res.Systems)
	}
	if p := CaptureProgress(); p.Active {
		t.Error("progress still active after StopCapture")
	}
}

// TestCaptureRejectsNesting pins the capture-already-active panic.
func TestCaptureRejectsNesting(t *testing.T) {
	StartCapture(CaptureConfig{})
	defer StopCapture()
	defer func() {
		if recover() == nil {
			t.Fatal("nested StartCapture did not panic")
		}
	}()
	StartCapture(CaptureConfig{})
}
