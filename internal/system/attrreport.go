package system

import (
	"fmt"
	"sort"
	"strings"

	"tako/internal/hier"
	"tako/internal/stats"
)

// This file renders the "where cycles go" decomposition from captured
// runs: per run and transaction kind, the share of cycles spent in each
// state of the coherence state machine, read back from the
// txn.state.cycles{kind,state} / txn.total.cycles{kind} histograms that
// armed attribution (hier.Config.Attribution) records. The renderer also
// verifies the conservation invariant — per kind, the summed per-state
// dwell must equal the summed transaction totals exactly, and the
// access-kind total must cover the recorded demand-load latency — so a
// report is evidence, not just formatting.

// attrKey addresses one parsed histogram.
type attrKey struct{ kind, state string }

// parseTxnHist decodes "txn.state.cycles{kind=K,state=S}" and
// "txn.total.cycles{kind=K}" registry names (labels are canonically
// sorted, kind before state).
func parseTxnHist(name string) (k attrKey, total, ok bool) {
	var rest string
	switch {
	case strings.HasPrefix(name, "txn.state.cycles{"):
		rest = strings.TrimSuffix(strings.TrimPrefix(name, "txn.state.cycles{"), "}")
	case strings.HasPrefix(name, "txn.total.cycles{"):
		rest, total = strings.TrimSuffix(strings.TrimPrefix(name, "txn.total.cycles{"), "}"), true
	default:
		return attrKey{}, false, false
	}
	for _, part := range strings.Split(rest, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return attrKey{}, false, false
		}
		switch kv[0] {
		case "kind":
			k.kind = kv[1]
		case "state":
			k.state = kv[1]
		}
	}
	if k.kind == "" || (!total && k.state == "") {
		return attrKey{}, false, false
	}
	return k, total, true
}

// runAttr is one run's parsed attribution data.
type runAttr struct {
	label   string
	dwell   map[attrKey]float64 // (kind, state) -> summed cycles
	total   map[string]float64  // kind -> summed cycles
	count   map[string]uint64   // kind -> transactions
	loadLat float64             // load.latency summed cycles
}

// parseRunAttr extracts the attribution histograms from one run record.
func parseRunAttr(r *RunRecord) runAttr {
	ra := runAttr{
		label: r.Label,
		dwell: map[attrKey]float64{},
		total: map[string]float64{},
		count: map[string]uint64{},
	}
	for _, h := range r.Metrics.Histograms {
		if h.Name == "load.latency" {
			ra.loadLat = h.Sum
			continue
		}
		k, total, ok := parseTxnHist(h.Name)
		if !ok {
			continue
		}
		if total {
			ra.total[k.kind] = h.Sum
			ra.count[k.kind] = h.Count
		} else {
			ra.dwell[k] = h.Sum
		}
	}
	return ra
}

// AttributionReport builds the cycle-decomposition table from captured
// runs — one row per (run, kind) with the share of cycles each machine
// state accounts for — and checks conservation. Runs without attribution
// histograms (disarmed captures, cached replays from disarmed runs) are
// skipped; if no run carries attribution data the table is empty. The
// returned error reports every conservation violation; the table is
// still valid alongside it.
func AttributionReport(runs []RunRecord) (*stats.Table, error) {
	parsed := make([]runAttr, 0, len(runs))
	used := map[string]bool{} // states with cycles anywhere, for column pruning
	for i := range runs {
		ra := parseRunAttr(&runs[i])
		if len(ra.total) == 0 {
			continue
		}
		parsed = append(parsed, ra)
		for k, v := range ra.dwell {
			if v > 0 {
				used[k.state] = true
			}
		}
	}

	var states []string
	for _, s := range hier.TxnStateOrder() {
		if used[s] {
			states = append(states, s)
		}
	}
	headers := append([]string{"run", "kind", "txns", "cycles"}, states...)
	tbl := stats.NewTable("where cycles go — per-state share of transaction cycles", headers...)

	var violations []string
	for _, ra := range parsed {
		for _, kind := range hier.TxnKindOrder() {
			total, ok := ra.total[kind]
			if !ok || ra.count[kind] == 0 {
				continue
			}
			row := []string{ra.label, kind,
				fmt.Sprintf("%d", ra.count[kind]), fmt.Sprintf("%.0f", total)}
			var dwellSum float64
			for _, s := range states {
				d := ra.dwell[attrKey{kind, s}]
				dwellSum += d
				if total > 0 {
					row = append(row, fmt.Sprintf("%.1f%%", 100*d/total))
				} else {
					row = append(row, "-")
				}
			}
			// States pruned from the columns still count toward the
			// conservation sum.
			for k, d := range ra.dwell {
				if k.kind == kind && !used[k.state] {
					dwellSum += d
				}
			}
			if dwellSum != total {
				violations = append(violations, fmt.Sprintf(
					"%s kind=%s: Σ state dwell %.0f != Σ txn total %.0f",
					ra.label, kind, dwellSum, total))
			}
			tbl.AddRow(row...)
		}
		// Demand loads are a subset of access transactions, so their
		// recorded latency can never exceed the access-kind cycles.
		if acc, ok := ra.total["access"]; ok && ra.loadLat > acc {
			violations = append(violations, fmt.Sprintf(
				"%s: load.latency sum %.0f exceeds access txn cycles %.0f",
				ra.label, ra.loadLat, acc))
		}
	}
	if len(violations) > 0 {
		return tbl, fmt.Errorf("attribution conservation violated:\n  %s",
			strings.Join(violations, "\n  "))
	}
	return tbl, nil
}

// SlowestReport merges every run's captured slow-access ring, keeps the
// k slowest across the whole set, and renders them as a table — rank,
// which run and tile issued the access, and the per-state timeline that
// explains where the cycles went. Returns nil when no run captured a
// slow ring (attribution disarmed or -slowest 0).
func SlowestReport(runs []RunRecord, k int) *stats.Table {
	type slowRun struct {
		run string
		acc hier.SlowAccess
	}
	var all []slowRun
	for i := range runs {
		for _, a := range runs[i].Slowest {
			all = append(all, slowRun{runs[i].Label, a})
		}
	}
	if len(all) == 0 {
		return nil
	}
	// Stable on (latency desc, run, start) so ties render deterministically.
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].acc.Latency != all[j].acc.Latency {
			return all[i].acc.Latency > all[j].acc.Latency
		}
		if all[i].run != all[j].run {
			return all[i].run < all[j].run
		}
		return all[i].acc.Start < all[j].acc.Start
	})
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	tbl := stats.NewTable("slowest demand accesses — state timelines",
		"#", "run", "tile", "addr", "rw", "start", "cycles", "timeline")
	for i, s := range all {
		rw := "R"
		if s.acc.Write {
			rw = "W"
		}
		var tl strings.Builder
		for j, seg := range s.acc.Timeline {
			if j > 0 {
				tl.WriteString(" ")
			}
			fmt.Fprintf(&tl, "%s:%d", seg.State, seg.Cycles)
		}
		if s.acc.Truncated {
			tl.WriteString(" …")
		}
		tbl.AddRow(fmt.Sprintf("%d", i+1), s.run,
			fmt.Sprintf("%d", s.acc.Tile), s.acc.Addr, rw,
			fmt.Sprintf("%d", s.acc.Start), fmt.Sprintf("%d", s.acc.Latency),
			tl.String())
	}
	return tbl
}

// AggregateTxnEdges merges the per-run coverage tables of several runs
// into one deterministic (kind, from, to)-ordered edge list with summed
// counts — the input for coverage heatmaps and unvisited-edge reports.
func AggregateTxnEdges(runs []RunRecord) []hier.TxnTransition {
	type edge struct{ kind, from, to string }
	counts := map[edge]uint64{}
	for i := range runs {
		for _, e := range runs[i].TxnEdges {
			counts[edge{e.Kind, e.From, e.To}] += e.Count
		}
	}
	var out []hier.TxnTransition
	for _, le := range hier.LegalEdges() {
		if c, ok := counts[edge{le.Kind, le.From, le.To}]; ok && c > 0 {
			le.Count = c
			out = append(out, le)
		}
	}
	return out
}
