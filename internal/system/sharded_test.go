package system

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"tako/internal/cpu"
	"tako/internal/hier"
	"tako/internal/mem"
	"tako/internal/sim"
)

// shardedConfig returns a baseline sharded machine config. Fresh checks
// are cleared explicitly: they read remote tile state mid-epoch, which
// the sharded build rejects (barrier checks replace them).
func shardedConfig(tiles, workers int) Config {
	cfg := Default(tiles)
	cfg.NoTako = true
	cfg.Sharded = true
	cfg.ShardWorkers = workers
	cfg.Hier.FreshChecks = false
	return cfg
}

// runSharedCounterWorkload drives a cross-tile workload over every
// coherence path the message protocol carries: exclusive write fetches,
// read downgrades of remote owners, RMO invalidations of the sharer set,
// and polling re-fetches. Each tile stores a stripe of words, announces
// completion through an atomic counter at the home bank, spins on the
// counter, then reads back every tile's stripe. Returns the per-tile
// readback (architectural values observed by committed loads) and the
// run fingerprint.
func runSharedCounterWorkload(t *testing.T, cfg Config) ([][]uint64, string) {
	t.Helper()
	const wordsPerTile = 16
	tiles := cfg.Tiles
	s := New(cfg)
	data := s.Alloc("data", uint64(tiles*wordsPerTile*8+4096))
	ctr := data.Base + mem.Addr(tiles*wordsPerTile*8+512)
	out := make([][]uint64, tiles)
	for i := 0; i < tiles; i++ {
		out[i] = make([]uint64, tiles*wordsPerTile)
		i := i
		s.Go(i, "worker", func(p *sim.Proc, c *cpu.Core) {
			for j := 0; j < wordsPerTile; j++ {
				c.Store(p, data.Base+mem.Addr((i*wordsPerTile+j)*8), uint64(i*1000+j))
			}
			c.AtomicAddSync(p, ctr, 1)
			for c.Load(p, ctr) != uint64(tiles) {
				p.Sleep(50)
			}
			for k := 0; k < tiles*wordsPerTile; k++ {
				out[i][k] = c.Load(p, data.Base+mem.Addr(k*8))
			}
		})
	}
	cycles := s.Run()
	snap, err := json.Marshal(s.H.Metrics.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	fp := fmt.Sprintf("cycles=%d ops=%d instrs=%d events=%d metrics=%s",
		cycles, s.Ops(), s.TotalInstrs(), s.KernelEvents(), snap)
	return out, fp
}

// wantReadback is the architectural truth every tile must observe after
// the counter barrier: tile i's stripe word j holds i*1000+j.
func checkReadback(t *testing.T, out [][]uint64, tiles int) {
	t.Helper()
	const wordsPerTile = 16
	for i := range out {
		for k, v := range out[i] {
			if want := uint64((k/wordsPerTile)*1000 + k%wordsPerTile); v != want {
				t.Fatalf("tile %d read word %d = %d, want %d", i, k, v, want)
			}
		}
	}
}

func TestShardedSystemSmoke(t *testing.T) {
	out, _ := runSharedCounterWorkload(t, shardedConfig(4, 0))
	checkReadback(t, out, 4)
}

// TestShardedDeterminismAcrossWorkers is the determinism battery at the
// system level: the same sharded machine run sequenced and with 2 and 4
// workers must produce byte-identical fingerprints — cycle count, op
// count, kernel events, and the full metrics snapshot.
func TestShardedDeterminismAcrossWorkers(t *testing.T) {
	outRef, ref := runSharedCounterWorkload(t, shardedConfig(4, 0))
	checkReadback(t, outRef, 4)
	for _, workers := range []int{1, 2, 4} {
		out, fp := runSharedCounterWorkload(t, shardedConfig(4, workers))
		if fp != ref {
			t.Fatalf("workers=%d diverged:\n got %s\nwant %s", workers, fp, ref)
		}
		if !reflect.DeepEqual(out, outRef) {
			t.Fatalf("workers=%d observed different architectural values", workers)
		}
	}
}

// TestShardedMatchesPartitionedArchitecturally cross-checks the sharded
// machine against the classic partitioned kernel on the same workload.
// Cycle counts legitimately differ (sharded cross-tile operations pay
// real message round trips; the classic engine resolves them under one
// clock), so the comparison is architectural only: every committed load
// observes the same values, and the instruction count is identical.
func TestShardedMatchesPartitionedArchitecturally(t *testing.T) {
	classic := Default(4)
	classic.NoTako = true
	classic.TilePar = 4
	outC, _ := runSharedCounterWorkload(t, classic)
	checkReadback(t, outC, 4)

	outS, _ := runSharedCounterWorkload(t, shardedConfig(4, 2))
	if !reflect.DeepEqual(outS, outC) {
		t.Fatal("sharded run observed different architectural values than the partitioned kernel")
	}
}

// TestShardedEvictionStressWithBarrierChecks forces shared-cache
// evictions (back-invalidations with recalls and dirty writebacks) on a
// scaled-down machine while the full invariant checker runs at every
// epoch barrier (SelfCheckEvery > 0 arms InstallBarrierChecks on a
// sharded build). Any protocol race — stale DRAM reads, directory/owned
// divergence, double writebacks — panics the run.
func TestShardedEvictionStressWithBarrierChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := shardedConfig(4, 2)
	cfg.Hier = hier.ScaledConfig(4, 64)
	cfg.Hier.FreshChecks = false
	cfg.Hier.SelfCheckEvery = 4
	s := New(cfg)
	region := s.Alloc("stress", 1<<20)
	const lines = 2048
	for i := 0; i < 4; i++ {
		i := i
		s.Go(i, "stress", func(p *sim.Proc, c *cpu.Core) {
			// Stream stores over far more lines than the scaled L3 holds,
			// sharing lines across tiles (stride collisions), mixing in
			// atomics and non-temporal stores.
			for j := 0; j < lines; j++ {
				a := region.Base + mem.Addr(((i*37+j)%lines)*64)
				c.Store(p, a, uint64(i*lines+j))
				if j%17 == 0 {
					c.AtomicAdd(p, region.Base+mem.Addr((j%64)*64+8), 1)
				}
				if j%29 == 0 {
					var l mem.Line
					l.SetWord(0, uint64(j))
					c.StoreLineNT(p, region.Base+mem.Addr(((j*13)%lines)*64), &l)
				}
				if j%41 == 0 {
					c.AtomicExchange(p, region.Base+mem.Addr((j%64)*64+16), uint64(j))
				}
			}
			c.DrainRMOs(p)
		})
	}
	if cycles := s.Run(); cycles == 0 {
		t.Fatal("no simulated time elapsed")
	}
	if err := s.H.CheckInvariants(); err != nil {
		t.Fatalf("post-run invariant check: %v", err)
	}
}
