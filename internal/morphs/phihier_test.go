package morphs

import "testing"

func TestHierarchicalPHICorrectAndCombines(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	prm := smallPHIParams()
	flat, err := RunPHI(PHITako, prm)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := RunPHI(PHIHier, prm)
	if err != nil {
		t.Fatal(err) // includes the bit-exact rank verification
	}
	t.Logf("flat: %d cycles; hier: %d cycles; forwarded=%v of %d pushes",
		flat.Cycles, hier.Cycles, hier.Extra["updates.forwarded"], prm.E)
	// The private level must combine: strictly fewer updates reach the
	// shared level than edges pushed.
	fw := int(hier.Extra["updates.forwarded"])
	if fw == 0 || fw >= prm.E {
		t.Fatalf("forwarded %d updates; want 0 < forwarded < %d (combining)", fw, prm.E)
	}
}
